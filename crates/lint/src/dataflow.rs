//! Dataflow pass: register def/use accounting per warp program.
//!
//! The accounting itself is a public API ([`KernelDataflow`]): downstream
//! static tooling (the `subcore-opt` cost model and register remapper)
//! consumes the same def/use chains and per-register read counts the
//! diagnostics are computed from, instead of re-walking programs.
//!
//! Emits:
//!
//! * **L001** (error) — an operand names a register at or above the
//!   kernel's declared `regs_per_thread`; the register was never
//!   allocated, so the engine would read/write another warp's slice.
//! * **L002** (warning) — a register written exactly once in the whole
//!   program (static occurrence × segment repeat) and never read. A
//!   single stray write is the classic typo shape; registers written
//!   *repeatedly* but never read are the generator's intentional
//!   WAW-pressure sinks and are not flagged.
//! * **L003** (error) — one warp's registers exceed the per-sub-core
//!   register file, so a warp can never be scheduled.
//! * **L004** (info) — the declared register count far exceeds the
//!   registers the program touches (≥ 4× and ≥ 24 registers of slack),
//!   costing occupancy for nothing.
//! * **L005** (info) — registers read before their first write (live-in
//!   values, e.g. accumulator initial values).

use crate::diag::{codes, Diagnostic, Location, Severity};
use crate::{program_groups, LintOptions};
use std::sync::Arc;
use subcore_engine::GpuConfig;
use subcore_isa::{Kernel, Reg, WarpProgram};

/// Which operand slot of an instruction touched a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Source operand `i` (0-based, left-to-right).
    Src(u8),
    /// The destination operand.
    Dst,
}

/// One static access site in a warp program: which instruction of which
/// segment touched the register, and through which operand slot.
///
/// Sites are recorded in program order (segments in order, instructions in
/// body order, sources left-to-right before the destination), so the
/// per-register site list *is* the register's def/use chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessSite {
    /// Segment index within the program.
    pub segment: u32,
    /// Instruction index within the segment body.
    pub instr: u32,
    /// Operand slot.
    pub operand: Operand,
}

/// Per-register def/use facts for one warp program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegisterFacts {
    /// Dynamic write count (static occurrences × segment repeat),
    /// saturating.
    pub writes: u64,
    /// Dynamic read count, saturating.
    pub reads: u64,
    /// Whether the first access in program order was a read (a live-in
    /// value such as an accumulator's initial contents).
    pub first_is_read: bool,
    /// Whether the register is accessed at all by executed segments.
    pub seen: bool,
    /// Segment index of the first write, for diagnostics.
    pub write_segment: usize,
}

/// Dataflow facts for one program group: the warp slots `first..=last`
/// that share one program, with per-register tallies and def/use chains.
#[derive(Debug, Clone)]
pub struct ProgramDataflow {
    /// First warp slot running this program.
    pub first_warp: u32,
    /// Last warp slot running this program.
    pub last_warp: u32,
    /// The shared program.
    pub program: Arc<WarpProgram>,
    /// Per-register facts, indexed by [`Reg::index`]. Zero-repeat
    /// segments never execute and are excluded.
    pub facts: Vec<RegisterFacts>,
    /// Registers referenced at or above the kernel's declared register
    /// count, with the segment of first offense, in discovery order.
    pub out_of_range: Vec<(Reg, usize)>,
    /// Per-register ordered access sites (def/use chains), indexed by
    /// [`Reg::index`]. Zero-repeat segments are excluded.
    pub chains: Vec<Vec<AccessSite>>,
}

impl ProgramDataflow {
    /// Walks `program` (shared by warp slots `first..=last` of a kernel
    /// declaring `declared_regs` registers per thread) and tallies every
    /// register access.
    pub fn of(first: u32, last: u32, program: &Arc<WarpProgram>, declared_regs: u32) -> Self {
        let mut facts = vec![RegisterFacts::default(); Reg::MAX_REGS];
        let mut chains = vec![Vec::new(); Reg::MAX_REGS];
        let mut out_of_range: Vec<(Reg, usize)> = Vec::new();
        for (seg_idx, seg) in program.segments().iter().enumerate() {
            if seg.repeat == 0 {
                continue; // never executes
            }
            for (pos, instr) in seg.body.iter().enumerate() {
                // Reads are tallied before the write so `a = a + b` marks
                // `a` as read-first (a live-in accumulator).
                for (slot, src) in instr.sources().enumerate() {
                    let f = &mut facts[src.index()];
                    if !f.seen {
                        f.seen = true;
                        f.first_is_read = true;
                    }
                    f.reads = f.reads.saturating_add(u64::from(seg.repeat));
                    chains[src.index()].push(AccessSite {
                        segment: seg_idx as u32,
                        instr: pos as u32,
                        operand: Operand::Src(slot as u8),
                    });
                    if src.index() as u32 >= declared_regs
                        && !out_of_range.iter().any(|&(r, _)| r == src)
                    {
                        out_of_range.push((src, seg_idx));
                    }
                }
                if let Some(dst) = instr.dst {
                    let f = &mut facts[dst.index()];
                    f.seen = true;
                    if f.writes == 0 {
                        f.write_segment = seg_idx;
                    }
                    f.writes = f.writes.saturating_add(u64::from(seg.repeat));
                    chains[dst.index()].push(AccessSite {
                        segment: seg_idx as u32,
                        instr: pos as u32,
                        operand: Operand::Dst,
                    });
                    if dst.index() as u32 >= declared_regs
                        && !out_of_range.iter().any(|&(r, _)| r == dst)
                    {
                        out_of_range.push((dst, seg_idx));
                    }
                }
            }
        }
        ProgramDataflow {
            first_warp: first,
            last_warp: last,
            program: program.clone(),
            facts,
            out_of_range,
            chains,
        }
    }

    /// Highest register index touched, plus one (0 if none).
    pub fn max_used(&self) -> u32 {
        self.facts
            .iter()
            .enumerate()
            .rev()
            .find(|(_, f)| f.seen)
            .map_or(0, |(idx, _)| idx as u32 + 1)
    }

    /// Dynamic read count of each register in `0..num_regs` (the input to
    /// bank-load flattening).
    pub fn read_counts(&self, num_regs: u32) -> Vec<u64> {
        (0..num_regs as usize).map(|r| self.facts[r].reads).collect()
    }

    /// Registers read before their first write, ascending.
    pub fn live_in(&self) -> Vec<Reg> {
        self.facts
            .iter()
            .enumerate()
            .filter(|(_, f)| f.seen && f.first_is_read && f.writes > 0)
            .map(|(idx, _)| Reg(idx as u8))
            .collect()
    }
}

/// Dataflow facts for every distinct program of a kernel, in warp-slot
/// order — the reusable product of the dataflow pass.
#[derive(Debug, Clone)]
pub struct KernelDataflow {
    /// One entry per pointer-distinct program run.
    pub programs: Vec<ProgramDataflow>,
}

impl KernelDataflow {
    /// Analyzes every distinct program of `kernel`.
    pub fn of(kernel: &Kernel) -> Self {
        let declared = u32::from(kernel.regs_per_thread());
        KernelDataflow {
            programs: program_groups(kernel)
                .iter()
                .map(|(first, last, program)| ProgramDataflow::of(*first, *last, program, declared))
                .collect(),
        }
    }

    /// Highest register index touched by any program, plus one.
    pub fn max_used(&self) -> u32 {
        self.programs.iter().map(ProgramDataflow::max_used).max().unwrap_or(0)
    }
}

/// Runs the dataflow pass over every distinct program of `kernel`.
pub fn check(kernel: &Kernel, cfg: &GpuConfig, opts: &LintOptions, out: &mut Vec<Diagnostic>) {
    // L003: a single warp that cannot fit in a sub-core register file.
    if u32::from(kernel.regs_per_thread()) > cfg.rf_regs_per_subcore {
        out.push(Diagnostic::new(
            codes::RF_CAPACITY,
            Severity::Error,
            Location::kernel(kernel.name()),
            format!(
                "one warp needs {} registers per lane but a sub-core register file holds {}; \
                 no warp of this kernel can ever be scheduled",
                kernel.regs_per_thread(),
                cfg.rf_regs_per_subcore
            ),
        ));
    }

    let declared = u32::from(kernel.regs_per_thread());
    let flow = KernelDataflow::of(kernel);
    let mut max_used: u32 = 0;
    for group in &flow.programs {
        let (first, last) = (group.first_warp, group.last_warp);
        for &(reg, seg_idx) in &group.out_of_range {
            out.push(Diagnostic::new(
                codes::REG_OUT_OF_RANGE,
                Severity::Error,
                Location::kernel(kernel.name()).warps(first, last).segment(seg_idx),
                format!("operand {reg} is outside the kernel's {declared}-register allocation"),
            ));
        }

        let mut live_in: Vec<Reg> = Vec::new();
        for (idx, f) in group.facts.iter().enumerate() {
            if !f.seen {
                continue;
            }
            max_used = max_used.max(idx as u32 + 1);
            let reg = Reg(idx as u8);
            if f.writes == 1 && f.reads == 0 {
                out.push(Diagnostic::new(
                    codes::DEAD_WRITE,
                    Severity::Warning,
                    Location::kernel(kernel.name()).warps(first, last).segment(f.write_segment),
                    format!("{reg} is written once but never read (dead write; likely a typo)"),
                ));
            }
            if f.first_is_read && f.writes > 0 {
                live_in.push(reg);
            }
        }
        if !live_in.is_empty() {
            let names: Vec<String> = live_in.iter().map(|r| r.to_string()).collect();
            out.push(Diagnostic::new(
                codes::READ_BEFORE_WRITE,
                Severity::Info,
                Location::kernel(kernel.name()).warps(first, last),
                format!(
                    "registers {} are read before their first write (live-in accumulators)",
                    names.join(", ")
                ),
            ));
        }
    }

    // L004: declared allocation far beyond anything the program touches.
    if max_used > 0
        && declared >= opts.over_alloc_ratio * max_used
        && declared - max_used >= opts.over_alloc_slack
    {
        out.push(Diagnostic::new(
            codes::OVER_ALLOCATED,
            Severity::Info,
            Location::kernel(kernel.name()),
            format!(
                "kernel declares {declared} registers per thread but only touches {max_used}; \
                 the unused allocation costs occupancy"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subcore_isa::{KernelBuilder, ProgramBuilder, Reg};

    fn lint(kernel: &Kernel) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check(kernel, &GpuConfig::volta_v100(), &LintOptions::default(), &mut out);
        out
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn out_of_range_operand_is_an_error() {
        let p = ProgramBuilder::new().fma(Reg(3), Reg(0), Reg(40), Reg(2)).build();
        let k = KernelBuilder::new("bad").regs_per_thread(8).uniform_program(p).build();
        let diags = lint(&k);
        let hit = diags.iter().find(|d| d.code == codes::REG_OUT_OF_RANGE).expect("fires");
        assert_eq!(hit.severity, Severity::Error);
        assert!(hit.message.contains("r40"), "{}", hit.message);
        assert_eq!(hit.location.warps, Some((0, 0)));
    }

    #[test]
    fn single_dead_write_is_a_warning() {
        let p = ProgramBuilder::new()
            .iadd(Reg(3), Reg(0), Reg(1)) // r3 written once, never read: typo shape
            .fma(Reg(2), Reg(0), Reg(1), Reg(2))
            .build();
        let k = KernelBuilder::new("dead").regs_per_thread(8).uniform_program(p).build();
        let diags = lint(&k);
        let hit = diags.iter().find(|d| d.code == codes::DEAD_WRITE).expect("fires");
        assert!(hit.message.contains("r3"), "{}", hit.message);
    }

    #[test]
    fn repeated_writes_are_not_dead_writes() {
        // The generator's WAW-sink idiom: a never-read destination inside a
        // repeat block is written every iteration — intentional, not a typo.
        let p = ProgramBuilder::new()
            .repeat(16, |b| {
                b.iadd(Reg(3), Reg(0), Reg(1));
            })
            .build();
        let k = KernelBuilder::new("sink").regs_per_thread(8).uniform_program(p).build();
        assert!(!codes_of(&lint(&k)).contains(&codes::DEAD_WRITE));
    }

    #[test]
    fn rf_capacity_overflow_is_an_error() {
        let p = ProgramBuilder::new().fma(Reg(0), Reg(0), Reg(1), Reg(2)).build();
        let k = KernelBuilder::new("fat").regs_per_thread(200).uniform_program(p).build();
        let mut cfg = GpuConfig::volta_v100();
        cfg.rf_regs_per_subcore = 128;
        let mut out = Vec::new();
        check(&k, &cfg, &LintOptions::default(), &mut out);
        assert!(codes_of(&out).contains(&codes::RF_CAPACITY));
    }

    #[test]
    fn over_allocation_is_an_info() {
        let p = ProgramBuilder::new().fma(Reg(3), Reg(0), Reg(1), Reg(2)).build();
        let k = KernelBuilder::new("fat").regs_per_thread(64).uniform_program(p).build();
        let diags = lint(&k);
        let hit = diags.iter().find(|d| d.code == codes::OVER_ALLOCATED).expect("fires");
        assert_eq!(hit.severity, Severity::Info);
    }

    #[test]
    fn accumulators_surface_as_live_in_info() {
        let p = ProgramBuilder::new()
            .repeat(8, |b| {
                b.fma(Reg(0), Reg(0), Reg(1), Reg(2)); // r0 read then written
            })
            .build();
        let k = KernelBuilder::new("acc").regs_per_thread(8).uniform_program(p).build();
        let diags = lint(&k);
        let hit = diags.iter().find(|d| d.code == codes::READ_BEFORE_WRITE).expect("fires");
        assert_eq!(hit.severity, Severity::Info);
        assert!(hit.message.contains("r0"), "{}", hit.message);
    }

    #[test]
    fn zero_repeat_segments_are_ignored() {
        use std::sync::Arc;
        use subcore_isa::{Instruction, OpClass, Segment, WarpProgram};
        let dead = Segment {
            body: vec![Instruction::new(OpClass::ArithI32, Some(Reg(3)), &[Reg(0), Reg(1)])].into(),
            repeat: 0,
        };
        let exit =
            Segment { body: vec![Instruction::new(OpClass::Exit, None, &[])].into(), repeat: 1 };
        let p = Arc::new(WarpProgram::from_segments(vec![dead, exit]));
        let k = KernelBuilder::new("zr").regs_per_thread(8).uniform_program(p).build();
        assert!(!codes_of(&lint(&k)).contains(&codes::DEAD_WRITE));
    }

    #[test]
    fn kernel_dataflow_exposes_counts_and_chains() {
        let p = ProgramBuilder::new()
            .repeat(4, |b| {
                b.fma(Reg(0), Reg(0), Reg(1), Reg(2));
            })
            .iadd(Reg(3), Reg(0), Reg(0))
            .build();
        let k = KernelBuilder::new("api").regs_per_thread(8).uniform_program(p).build();
        let flow = KernelDataflow::of(&k);
        assert_eq!(flow.programs.len(), 1);
        let g = &flow.programs[0];
        assert_eq!((g.first_warp, g.last_warp), (0, 0));
        // r0: read (src0) ×4 in the loop, written ×4, then read twice more.
        assert_eq!(g.facts[0].reads, 4 + 2);
        assert_eq!(g.facts[0].writes, 4);
        assert!(g.facts[0].first_is_read);
        // Chains record static sites in program order.
        assert_eq!(
            g.chains[0],
            vec![
                AccessSite { segment: 0, instr: 0, operand: Operand::Src(0) },
                AccessSite { segment: 0, instr: 0, operand: Operand::Dst },
                AccessSite { segment: 1, instr: 0, operand: Operand::Src(0) },
                AccessSite { segment: 1, instr: 0, operand: Operand::Src(1) },
            ]
        );
        assert_eq!(g.read_counts(8), vec![6, 4, 4, 0, 0, 0, 0, 0]);
        assert_eq!(g.live_in(), vec![Reg(0)]);
        assert_eq!(g.max_used(), 4);
        assert_eq!(flow.max_used(), 4);
    }
}
