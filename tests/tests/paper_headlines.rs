//! End-to-end checks that the reproduction preserves the paper's headline
//! qualitative results, exercising every crate together.

use subcore_integration::{run, speedup_over_baseline};
use subcore_power::CostModel;
use subcore_sched::Design;
use subcore_workloads::{
    app_by_name, fma_microbenchmark, fma_unbalanced_scaled, tpch_query, FmaLayout,
};

/// §III-B / Fig. 3: the unbalanced FMA layout is ~4× slower on a 4-sub-core
/// SM and roughly unaffected on the monolithic SM.
#[test]
fn subcore_imbalance_penalty() {
    let base = run(Design::Baseline, &fma_microbenchmark(FmaLayout::Baseline, 4, 512));
    let unbal = run(Design::Baseline, &fma_microbenchmark(FmaLayout::Unbalanced, 4, 512));
    let ratio = unbal.cycles as f64 / base.cycles as f64;
    assert!((3.0..4.6).contains(&ratio), "partitioned penalty {ratio:.2} (paper: 3.9)");

    let fc_base = run(Design::FullyConnected, &fma_microbenchmark(FmaLayout::Baseline, 4, 512));
    let fc_unbal = run(Design::FullyConnected, &fma_microbenchmark(FmaLayout::Unbalanced, 4, 512));
    let fc_ratio = fc_unbal.cycles as f64 / fc_base.cycles as f64;
    assert!(fc_ratio < 1.35, "monolithic SM smooths imbalance, got {fc_ratio:.2}");
}

/// Fig. 8: hashed assignment recovers more as imbalance grows, and SRR
/// (which matches the every-4th-warp pattern exactly) is at least as good
/// as Shuffle.
#[test]
fn hashed_assignment_scales_with_imbalance() {
    let mut last_srr = 0.0;
    for scale in [2u32, 8, 32] {
        let app = fma_unbalanced_scaled(4, 96, scale);
        let srr = speedup_over_baseline(Design::Srr, &app);
        let shuffle = speedup_over_baseline(Design::Shuffle, &app);
        assert!(srr > last_srr, "SRR gain grows with imbalance ({srr:.2} at x{scale})");
        assert!(srr >= shuffle * 0.98, "SRR ({srr:.2}) ≥ Shuffle ({shuffle:.2}) at x{scale}");
        assert!(shuffle > 1.1, "Shuffle recovers something at x{scale}: {shuffle:.2}");
        last_srr = srr;
    }
}

/// §VI / Fig. 10: RBA speeds up read-operand-stage-bound applications, and
/// beats the fully-connected SM on cuGraph-style register-reuse workloads.
#[test]
fn rba_recovers_register_bank_throughput() {
    for name in ["pb-mriq", "rod-srad", "ply-2Dcon"] {
        let app = app_by_name(name).unwrap();
        let rba = speedup_over_baseline(Design::Rba, &app);
        assert!(rba > 1.15, "{name}: RBA should give a solid speedup, got {rba:.3}");
    }
    let app = app_by_name("cg-pgrnk").unwrap();
    let rba = speedup_over_baseline(Design::Rba, &app);
    let fc = speedup_over_baseline(Design::FullyConnected, &app);
    assert!(rba > fc + 0.08, "cuGraph: RBA ({rba:.2}) well above fully-connected ({fc:.2})");
}

/// Fig. 14: RBA lifts the average register-file read throughput.
#[test]
fn rba_lifts_rf_utilization() {
    let app = app_by_name("rod-srad").unwrap();
    let base = run(Design::Baseline, &app);
    let rba = run(Design::Rba, &app);
    assert!(
        rba.rf_reads_per_cycle_per_sm() > base.rf_reads_per_cycle_per_sm(),
        "RBA reads/cycle {:.2} vs baseline {:.2}",
        rba.rf_reads_per_cycle_per_sm(),
        base.rf_reads_per_cycle_per_sm()
    );
}

/// Figs. 15–17: TPC-H q8 (the paper's most imbalanced uncompressed query)
/// gains ~30 % from SRR and its issue CV collapses.
#[test]
fn tpch_q8_story() {
    let app = tpch_query(8, false);
    let base = run(Design::Baseline, &app);
    let srr = run(Design::Srr, &app);
    let speedup = base.cycles as f64 / srr.cycles as f64;
    assert!((1.15..1.55).contains(&speedup), "q8 SRR speedup {speedup:.2} (paper: 1.31)");
    let cv_base = base.issue_cv().unwrap();
    let cv_srr = srr.issue_cv().unwrap();
    assert!(cv_srr < cv_base / 3.0, "SRR collapses issue CV: {cv_base:.2} → {cv_srr:.2}");
}

/// §VI: register bank stealing gives <2 % on modern 2-CU sub-cores.
#[test]
fn bank_stealing_is_marginal() {
    for name in ["pb-mriq", "rod-srad"] {
        let app = app_by_name(name).unwrap();
        let s = speedup_over_baseline(Design::BankStealing, &app);
        assert!((0.93..1.12).contains(&s), "{name}: bank stealing should be marginal, got {s:.3}");
    }
}

/// §VI-B4: RBA still wins with stale scores (our synthetic conflict
/// bursts oscillate faster than real SASS phases, so we degrade more than
/// the paper's <0.1% but never below a clear win; see EXPERIMENTS.md).
#[test]
fn rba_score_latency_tolerance() {
    let app = app_by_name("pb-mriq").unwrap();
    let fresh = speedup_over_baseline(Design::RbaLatency(0), &app);
    let stale = speedup_over_baseline(Design::RbaLatency(20), &app);
    assert!(fresh > 1.1, "RBA works at latency 0: {fresh:.2}");
    assert!(stale > 1.05, "20-cycle-stale scores keep a clear win: {fresh:.2} → {stale:.2}");
    assert!(stale < fresh, "staleness cannot help");
}

/// Fig. 13: the cost model's headline numbers.
#[test]
fn cost_model_headlines() {
    let m = CostModel::calibrated_45nm();
    let four = m.normalized_cost(4, 2, false);
    let rba = m.normalized_cost(2, 2, true);
    assert!((four.area - 1.27).abs() < 0.04);
    assert!((four.power - 1.60).abs() < 0.06);
    assert!(rba.area < 1.02 && rba.power < 1.02);
}

/// The combined design (Shuffle + RBA) composes: it helps both an
/// imbalance-dominated app and a bank-conflict-dominated app.
#[test]
fn combined_design_composes() {
    let imbalanced = tpch_query(9, false);
    let reg_bound = app_by_name("rod-srad").unwrap();
    assert!(speedup_over_baseline(Design::ShuffleRba, &imbalanced) > 1.1);
    assert!(speedup_over_baseline(Design::ShuffleRba, &reg_bound) > 1.15);
}
