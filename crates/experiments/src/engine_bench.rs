//! Head-to-head engine-mode benchmark (`repro bench-engine`): runs a
//! fixed headline workload subset under both [`EngineMode`]s, asserts the
//! resulting `RunStats` are bit-identical, and reports per-case and
//! aggregate throughput.
//!
//! This is the verify gate's perf smoke test: it fails loudly if the
//! event-driven fast path ever diverges from the polled reference on the
//! workloads the figures are built from, and it archives the measured
//! speedups to `BENCH_engine.json` so regressions are visible in review.
//! Simulations run directly through [`simulate_app`] — not the memoizing
//! session — so both modes are timed honestly.

use std::time::Instant;

use subcore_engine::{simulate_app, EngineMode, GpuConfig, RunStats};
use subcore_isa::App;
use subcore_persist::Json;
use subcore_sched::Design;

/// One benchmark case: a workload under a design on a base configuration.
pub struct EngineBenchCase {
    /// Workload to simulate.
    pub app: App,
    /// Design applied to the base configuration.
    pub design: Design,
    /// Base configuration (the engine mode is overridden per run).
    pub base: GpuConfig,
}

/// Measured outcome of one case (stats already verified identical).
pub struct EngineBenchRow {
    /// `app/design` label.
    pub label: String,
    /// Simulated cycles (identical in both modes by construction).
    pub cycles: u64,
    /// Wall seconds of the polled-reference run.
    pub reference_secs: f64,
    /// Wall seconds of the event-driven run.
    pub event_secs: f64,
}

impl EngineBenchRow {
    /// Wall-time speedup of the event-driven engine over the reference.
    pub fn speedup(&self) -> f64 {
        self.reference_secs / self.event_secs
    }
}

/// The full bench report: one row per case.
pub struct EngineBenchReport {
    /// Per-case measurements, in case order.
    pub rows: Vec<EngineBenchRow>,
}

impl EngineBenchReport {
    /// Geometric-mean wall-time speedup across all cases.
    pub fn geomean_speedup(&self) -> f64 {
        crate::runner::geomean(&self.rows.iter().map(EngineBenchRow::speedup).collect::<Vec<_>>())
    }

    /// Human-readable table of the measurements.
    pub fn render(&self) -> String {
        let mut s = String::from("engine bench: event-driven vs polled reference\n");
        s.push_str(&format!(
            "  {:<28} {:>12} {:>11} {:>11} {:>8}\n",
            "case", "cycles", "reference", "event", "speedup"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "  {:<28} {:>12} {:>10.2}s {:>10.2}s {:>7.2}x\n",
                r.label,
                r.cycles,
                r.reference_secs,
                r.event_secs,
                r.speedup()
            ));
        }
        s.push_str(&format!("  geomean speedup: {:.2}x\n", self.geomean_speedup()));
        s
    }

    /// JSON artifact written to `BENCH_engine.json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Uint(1)),
            ("geomean_speedup", Json::Num(self.geomean_speedup())),
            (
                "cases",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("case", Json::Str(r.label.clone())),
                                ("cycles", Json::Uint(r.cycles)),
                                ("reference_secs", Json::Num(r.reference_secs)),
                                ("event_secs", Json::Num(r.event_secs)),
                                ("speedup", Json::Num(r.speedup())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Smoke-sized base configuration: 2 SMs keep each case in the low
/// seconds while still exercising cross-SM admission and skip-ahead.
fn smoke_base() -> GpuConfig {
    GpuConfig::volta_v100().with_sms(2).with_max_cycles(20_000_000)
}

/// The fixed headline subset: one workload per behavior class (compute,
/// register-bound, irregular, TPC-H, idle-heavy imbalance), Baseline
/// everywhere plus one non-baseline design to cover policy interplay.
pub fn headline_cases() -> Vec<EngineBenchCase> {
    let registry = ["pb-sgemm", "rod-bp", "pb-spmv", "pb-sad", "tpcC-q9"];
    let mut cases: Vec<EngineBenchCase> = registry
        .iter()
        .map(|name| EngineBenchCase {
            app: subcore_workloads::app_by_name(name).expect("registry app"),
            design: Design::Baseline,
            base: smoke_base(),
        })
        .collect();
    cases.push(EngineBenchCase {
        app: subcore_workloads::fma_microbenchmark(
            subcore_workloads::FmaLayout::Unbalanced,
            4,
            4096,
        ),
        design: Design::Baseline,
        base: smoke_base(),
    });
    cases.push(EngineBenchCase {
        app: subcore_workloads::fma_unbalanced_scaled(4, 512, 12),
        design: Design::Baseline,
        base: smoke_base(),
    });
    cases.push(EngineBenchCase {
        app: subcore_workloads::app_by_name("pb-sgemm").expect("registry app"),
        design: Design::Rba,
        base: smoke_base(),
    });
    cases
}

/// Timed repetitions per mode per case: the minimum over the repetitions
/// is reported, since scheduling noise only ever adds time.
const TIMING_RUNS: usize = 3;

/// Runs every case in both engine modes, asserting bit-exact stats.
///
/// Returns `Err` (instead of panicking) when a case diverges, so the
/// `repro` binary can report the offending case and exit nonzero.
pub fn run_cases(cases: Vec<EngineBenchCase>) -> Result<EngineBenchReport, String> {
    let mut rows = Vec::with_capacity(cases.len());
    for case in cases {
        let label = format!("{}/{}", case.app.name(), case.design.label());
        let cfg = case.design.config(&case.base);
        let policies = case.design.policies();
        let timed = |mode: EngineMode| -> Result<(RunStats, f64), String> {
            let cfg = cfg.clone().with_engine_mode(mode);
            let t0 = Instant::now();
            let stats = simulate_app(&cfg, &policies, &case.app)
                .map_err(|e| format!("{label} ({mode:?}): {e}"))?;
            Ok((stats, t0.elapsed().as_secs_f64()))
        };
        let (reference, mut reference_secs) = timed(EngineMode::Reference)?;
        let (event, mut event_secs) = timed(EngineMode::EventDriven)?;
        if event != reference {
            return Err(format!(
                "{label}: event-driven stats diverged from the polled reference \
                 (cycles {} vs {})",
                event.cycles, reference.cycles
            ));
        }
        // Modes alternate so slow drift (thermal, cache) hits both equally.
        for _ in 1..TIMING_RUNS {
            reference_secs = reference_secs.min(timed(EngineMode::Reference)?.1);
            event_secs = event_secs.min(timed(EngineMode::EventDriven)?.1);
        }
        rows.push(EngineBenchRow { label, cycles: event.cycles, reference_secs, event_secs });
    }
    Ok(EngineBenchReport { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use subcore_workloads::{fma_microbenchmark, FmaLayout};

    fn tiny_case() -> EngineBenchCase {
        EngineBenchCase {
            app: fma_microbenchmark(FmaLayout::Unbalanced, 2, 64),
            design: Design::Baseline,
            base: GpuConfig::volta_v100().with_sms(1).with_max_cycles(5_000_000),
        }
    }

    #[test]
    fn tiny_case_matches_and_reports() {
        let report = run_cases(vec![tiny_case()]).expect("modes agree");
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert!(row.cycles > 0);
        assert!(row.reference_secs >= 0.0 && row.event_secs >= 0.0);
        let text = report.render();
        assert!(text.contains("geomean speedup"), "render: {text}");
        assert!(text.contains(&row.label), "render: {text}");
    }

    #[test]
    fn json_artifact_round_trips() {
        let report = EngineBenchReport {
            rows: vec![EngineBenchRow {
                label: "app/baseline".into(),
                cycles: 1000,
                reference_secs: 2.0,
                event_secs: 1.0,
            }],
        };
        let json = report.to_json().render();
        let parsed = Json::parse(&json).expect("valid json");
        assert_eq!(parsed.field("schema").and_then(Json::as_u64).unwrap(), 1);
        let cases = parsed.field("cases").and_then(Json::as_arr).unwrap();
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].field("cycles").and_then(Json::as_u64).unwrap(), 1000);
        let speedup = cases[0].field("speedup").and_then(Json::as_f64).unwrap();
        assert!((speedup - 2.0).abs() < 1e-12);
    }

    #[test]
    fn headline_cases_cover_the_behavior_classes() {
        let cases = headline_cases();
        assert!(cases.len() >= 5);
        assert!(cases.iter().any(|c| c.app.name().starts_with("tpc")), "TPC-H case present");
        assert!(cases.iter().any(|c| !matches!(c.design, Design::Baseline)), "non-baseline case");
    }
}
