//! Cost-aware scheduling integration: sweeps start their
//! longest-predicted cells first (LPT list scheduling), predictions land
//! in every run record, and the journal/resume machinery is oblivious to
//! the reordering.
//!
//! This file is its own test binary with a single test so it can claim
//! the process-wide jobs cap: with exactly one worker the supervisor runs
//! cells strictly in submission order, which turns telemetry record order
//! into ground truth for the scheduler's chosen order.

use std::sync::Arc;
use subcore_engine::{GpuConfig, RunStats};
use subcore_experiments::journal::Journal;
use subcore_experiments::sweep::{run_cell_sweep_on, SweepOutcome};
use subcore_experiments::{SimSession, SupervisorPolicy};
use subcore_isa::{fma_kernel, App, Suite};

/// Apps in strictly *ascending* size, so longest-predicted-first must
/// reverse the submission order.
fn apps() -> Vec<App> {
    (0u32..5)
        .map(|i| {
            let k = fma_kernel("k", 2 + 4 * i, 8, 32 + 32 * i);
            App::new(format!("sched-{i}"), Suite::Micro, vec![k])
        })
        .collect()
}

fn base() -> GpuConfig {
    GpuConfig::volta_v100().with_sms(1).with_max_cycles(5_000_000)
}

fn sweep(sess: &SimSession, journal: Option<&Journal>, resume: bool, apps: &[App]) -> SweepOutcome {
    run_cell_sweep_on(sess, journal, resume, &base(), apps, &[], &SupervisorPolicy::default(), None)
}

fn flat(out: &SweepOutcome) -> Vec<Option<Arc<RunStats>>> {
    out.cells.iter().flatten().cloned().collect()
}

#[test]
fn sweeps_run_longest_predicted_first_and_journals_are_oblivious() {
    assert!(subcore_experiments::set_jobs(1), "this binary owns the jobs cap");
    assert!(subcore_experiments::reorder_enabled(), "cost-aware ordering defaults on");
    let apps = apps();

    // Reordered sweep: completion order must follow descending predictions,
    // not submission order.
    let sess = SimSession::in_memory();
    let out = sweep(&sess, None, false, &apps);
    assert!(out.failures.is_empty(), "{:?}", out.failures);
    let records = sess.telemetry().records();
    assert_eq!(records.len(), apps.len());
    let predicted: Vec<u64> = records
        .iter()
        .map(|r| r.predicted_cycles.unwrap_or_else(|| panic!("{} lost its prediction", r.app)))
        .collect();
    assert!(
        predicted.windows(2).all(|w| w[0] >= w[1]),
        "completion order does not follow predictions: {predicted:?}"
    );
    assert_eq!(records[0].app, "sched-4", "largest app starts first");
    assert_eq!(records.last().unwrap().app, "sched-0", "smallest app finishes last");
    for r in &records {
        assert!(r.estimate_error().is_some(), "{} has a prediction and cycles", r.app);
    }

    // Control: with the knob off, the same sweep runs in submission order.
    subcore_experiments::set_reorder(false);
    let control = SimSession::in_memory();
    let _ = sweep(&control, None, false, &apps);
    let names: Vec<String> = control.telemetry().records().iter().map(|r| r.app.clone()).collect();
    assert_eq!(names, vec!["sched-0", "sched-1", "sched-2", "sched-3", "sched-4"]);
    subcore_experiments::set_reorder(true);

    // Journal + resume are order-independent: a journaled reordered run
    // resumes to the identical grid without recomputing a single cell.
    let root = std::env::temp_dir().join(format!("subcore-cost-sched-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let journal = Journal::open(&root, "cost-sched");
    let journaled_sess = SimSession::in_memory();
    let journaled = sweep(&journaled_sess, Some(&journal), false, &apps);
    assert!(journaled.failures.is_empty());
    let resumed = sweep(&SimSession::in_memory(), Some(&journal), true, &apps);
    assert_eq!(resumed.journal_skips, apps.len() as u64, "every cell resumes from the journal");
    for (i, (a, b)) in flat(&journaled).iter().zip(flat(&resumed)).enumerate() {
        let a = a.as_deref().expect("journaled cell complete");
        let b = b.expect("resumed cell complete");
        assert_eq!(a, &*b, "cell {i} changed across resume");
    }
    // And the journaled grid equals the unjournaled one, bit for bit.
    for (i, (a, b)) in flat(&out).iter().zip(flat(&journaled)).enumerate() {
        let a = a.as_deref().expect("cell complete");
        let b = b.expect("cell complete");
        assert_eq!(a, &*b, "cell {i} depends on journaling");
    }
    std::fs::remove_dir_all(&root).ok();
}
