//! Per-session run telemetry: where each result came from (fresh
//! simulation, in-memory memo, or disk cache), how long the simulations
//! took (including probe-traced runs), and how well the worker pool was
//! utilized.
//!
//! The counters live on the [`crate::session::SimSession`]; pool usage and
//! supervision outcomes (failed / retried / timed-out jobs, journal skips)
//! are reported by [`crate::runner::parallel_map`] and
//! [`crate::supervisor::supervise_map`] into process-wide logs (the pool
//! has no session handle). Each [`Telemetry`] captures the log positions
//! at construction and its snapshots only cover usage reported *after*
//! that point, so a second in-process session never inherits an earlier
//! session's pool or supervision counters.

use crate::report::csv_field;
use crate::supervisor::JobError;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use subcore_metrics::names as mx;

/// Schema version of `run_telemetry.csv`, mirroring the engine's
/// [`subcore_engine::STATS_SCHEMA_VERSION`] discipline: the first CSV
/// line is a `# subcore-run-telemetry schema=N …` tag so downstream
/// tooling can detect column drift instead of silently misparsing.
/// History: v1 (untagged, header-first) through PR 6; v2 adds the tag
/// line itself.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 2;

/// Detects the schema version of `run_telemetry.csv` text. Files
/// starting with the `# subcore-run-telemetry schema=N` tag report `N`;
/// anything else (including pre-tag archives whose first line is the
/// header row) is treated as legacy v1 — the loader tolerates, never
/// rejects.
pub fn csv_schema_version(text: &str) -> u32 {
    let Some(first) = text.lines().next() else {
        return 1;
    };
    let Some(rest) = first.strip_prefix("# subcore-run-telemetry ") else {
        return 1;
    };
    rest.split_whitespace().find_map(|word| word.strip_prefix("schema=")?.parse().ok()).unwrap_or(1)
}

/// The header columns of `run_telemetry.csv` text: the first
/// non-comment line, split on commas. `None` for empty input.
pub fn csv_columns(text: &str) -> Option<Vec<String>> {
    text.lines()
        .find(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| l.split(',').map(str::to_string).collect())
}

/// Where a [`crate::session::SimSession::run`] result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunSource {
    /// Freshly simulated in this process.
    Simulated,
    /// Loaded from the on-disk result cache.
    Disk,
}

impl RunSource {
    /// Stable lowercase tag used in the telemetry CSV.
    pub fn tag(&self) -> &'static str {
        match self {
            RunSource::Simulated => "sim",
            RunSource::Disk => "disk",
        }
    }
}

/// One materialized (non-memoized) session run.
///
/// Memo hits are counted but not recorded: a sweep produces thousands of
/// them and they carry no information beyond the original record.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The run's [`crate::session::SimKey`] fingerprint.
    pub key: u64,
    /// Application name.
    pub app: String,
    /// Design label (see `Design::label`).
    pub design: String,
    /// Fresh simulation or disk-cache load.
    pub source: RunSource,
    /// Whether the run had the engine's probe points enabled
    /// (`trace_window > 0`), so its wall time includes tracing overhead.
    pub traced: bool,
    /// Wall time spent materializing the result.
    pub wall: Duration,
    /// Simulated cycles of the result.
    pub cycles: u64,
    /// Engine-mode tag the run's configuration selected
    /// ([`subcore_engine::EngineMode::tag`]).
    pub engine_mode: &'static str,
    /// Adaptive evaluation windows the run completed (0 for fixed modes
    /// and for disk-cache loads, whose engine never ran here).
    pub adaptive_windows: u64,
    /// Adaptive windows that ended on the reference-scan fallback.
    pub adaptive_fallbacks: u64,
    /// Static cost-model cycle prediction registered for this run's key
    /// before it materialized ([`crate::session::SimSession::predict`]),
    /// `None` when no prediction was on file.
    pub predicted_cycles: Option<u64>,
    /// Tenant name for per-tenant rows of a multi-tenant co-schedule cell
    /// (`repro tenants`); `None` for ordinary single-app runs.
    pub tenant: Option<String>,
    /// Deadline slack (deadline − finish, cycles; negative = missed) for
    /// tenant rows whose tenant carries a deadline.
    pub deadline_slack: Option<i64>,
    /// Compact SM-partition label (`SmSet::label`, e.g. `0-2`) for tenant
    /// rows.
    pub partition_sms: Option<String>,
}

impl RunRecord {
    /// Relative predicted-vs-actual cycle error,
    /// `|predicted − actual| / actual`. `None` when no prediction was on
    /// file (or the run reported zero cycles, which only failures do).
    pub fn estimate_error(&self) -> Option<f64> {
        let predicted = self.predicted_cycles?;
        if self.cycles == 0 {
            return None;
        }
        Some((predicted as f64 - self.cycles as f64).abs() / self.cycles as f64)
    }
}

/// Counter block owned by a [`crate::session::SimSession`].
#[derive(Debug)]
pub struct Telemetry {
    runs: AtomicU64,
    memo_hits: AtomicU64,
    disk_hits: AtomicU64,
    sims: AtomicU64,
    sim_wall_nanos: AtomicU64,
    sim_cycles: AtomicU64,
    traced_sims: AtomicU64,
    traced_wall_nanos: AtomicU64,
    // Fresh simulations by engine mode (event / reference / adaptive), and
    // the adaptive controller's aggregate window decisions.
    mode_event: AtomicU64,
    mode_reference: AtomicU64,
    mode_adaptive: AtomicU64,
    adaptive_windows: AtomicU64,
    adaptive_fallbacks: AtomicU64,
    cache_write_failures: AtomicU64,
    tenant_jobs: AtomicU64,
    records: Mutex<Vec<RunRecord>>,
    // Positions of the process-wide pool and supervision logs at
    // construction; snapshots only report usage logged after these points.
    pool_base_busy_nanos: u64,
    pool_base_wall_nanos: u64,
    pool_base_invocations: usize,
    sup_base_failed: u64,
    sup_base_retried: u64,
    sup_base_timed_out: u64,
    sup_base_journal_skips: u64,
    sup_base_trace_drops: u64,
    sup_base_failures: usize,
}

impl Default for Telemetry {
    fn default() -> Self {
        let pool = lock_recover(&POOL);
        let sup = lock_recover(&SUPERVISION);
        Telemetry {
            runs: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            sims: AtomicU64::new(0),
            sim_wall_nanos: AtomicU64::new(0),
            sim_cycles: AtomicU64::new(0),
            traced_sims: AtomicU64::new(0),
            traced_wall_nanos: AtomicU64::new(0),
            mode_event: AtomicU64::new(0),
            mode_reference: AtomicU64::new(0),
            mode_adaptive: AtomicU64::new(0),
            adaptive_windows: AtomicU64::new(0),
            adaptive_fallbacks: AtomicU64::new(0),
            cache_write_failures: AtomicU64::new(0),
            tenant_jobs: AtomicU64::new(0),
            records: Mutex::new(Vec::new()),
            pool_base_busy_nanos: pool.busy_nanos,
            pool_base_wall_nanos: pool.wall_nanos,
            pool_base_invocations: pool.workers.len(),
            sup_base_failed: sup.failed,
            sup_base_retried: sup.retried,
            sup_base_timed_out: sup.timed_out,
            sup_base_journal_skips: sup.journal_skips,
            sup_base_trace_drops: sup.trace_drops,
            sup_base_failures: sup.failures.len(),
        }
    }
}

/// Locks `m`, recovering the guard if a panicking holder poisoned it — a
/// failed job must never cascade into every later telemetry access.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Telemetry {
    /// Counts one `run()` call (any outcome).
    pub(crate) fn note_run(&self) {
        self.runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a run served from the in-memory memo table.
    pub(crate) fn note_memo_hit(&self) {
        self.memo_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a materialized run (fresh simulation or disk load).
    pub(crate) fn note_materialized(&self, record: RunRecord) {
        match record.source {
            RunSource::Simulated => {
                let wall_nanos = u64::try_from(record.wall.as_nanos()).unwrap_or(u64::MAX);
                self.sims.fetch_add(1, Ordering::Relaxed);
                self.sim_wall_nanos.fetch_add(wall_nanos, Ordering::Relaxed);
                self.sim_cycles.fetch_add(record.cycles, Ordering::Relaxed);
                if record.traced {
                    self.traced_sims.fetch_add(1, Ordering::Relaxed);
                    self.traced_wall_nanos.fetch_add(wall_nanos, Ordering::Relaxed);
                }
                match record.engine_mode {
                    "event" => self.mode_event.fetch_add(1, Ordering::Relaxed),
                    "reference" => self.mode_reference.fetch_add(1, Ordering::Relaxed),
                    "adaptive" => self.mode_adaptive.fetch_add(1, Ordering::Relaxed),
                    _ => 0,
                };
                self.adaptive_windows.fetch_add(record.adaptive_windows, Ordering::Relaxed);
                self.adaptive_fallbacks.fetch_add(record.adaptive_fallbacks, Ordering::Relaxed);
            }
            RunSource::Disk => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        lock_recover(&self.records).push(record);
    }

    /// Records one per-tenant row of a multi-tenant co-schedule cell.
    /// Tenant rows are bookkept separately from single-app simulations —
    /// they describe a slice of a cell another record already counted, so
    /// they bump only the `tenant jobs` counter, never the sim totals.
    pub(crate) fn note_tenant_run(&self, record: RunRecord) {
        self.tenant_jobs.fetch_add(1, Ordering::Relaxed);
        lock_recover(&self.records).push(record);
    }

    /// Counts one failed write to the on-disk result cache (see
    /// [`crate::cache::DiskCache::store`]); surfaced once per session in
    /// the summary so a read-only `results/` can't silently disable
    /// persistence.
    pub(crate) fn note_cache_write_failure(&self) {
        self.cache_write_failures.fetch_add(1, Ordering::Relaxed);
        subcore_metrics::inc(mx::SESSION_CACHE_STORE_DROP);
    }

    /// A point-in-time copy of the counters, including the pool usage and
    /// supervision outcomes reported since this `Telemetry` was created.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let (pool_busy, pool_wall, pool_max_workers) = {
            let pool = lock_recover(&POOL);
            let since = self.pool_base_invocations.min(pool.workers.len());
            (
                Duration::from_nanos(pool.busy_nanos.saturating_sub(self.pool_base_busy_nanos)),
                Duration::from_nanos(pool.wall_nanos.saturating_sub(self.pool_base_wall_nanos)),
                pool.workers[since..].iter().copied().max().unwrap_or(0),
            )
        };
        let (failed, retried, timed_out, journal_skips, trace_drops) = {
            let sup = lock_recover(&SUPERVISION);
            (
                sup.failed.saturating_sub(self.sup_base_failed),
                sup.retried.saturating_sub(self.sup_base_retried),
                sup.timed_out.saturating_sub(self.sup_base_timed_out),
                sup.journal_skips.saturating_sub(self.sup_base_journal_skips),
                sup.trace_drops.saturating_sub(self.sup_base_trace_drops),
            )
        };
        TelemetrySnapshot {
            failed,
            retried,
            timed_out,
            journal_skips,
            trace_drops,
            cache_write_failures: self.cache_write_failures.load(Ordering::Relaxed),
            runs: self.runs.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            sims: self.sims.load(Ordering::Relaxed),
            sim_wall: Duration::from_nanos(self.sim_wall_nanos.load(Ordering::Relaxed)),
            sim_cycles: self.sim_cycles.load(Ordering::Relaxed),
            traced_sims: self.traced_sims.load(Ordering::Relaxed),
            traced_wall: Duration::from_nanos(self.traced_wall_nanos.load(Ordering::Relaxed)),
            mode_event: self.mode_event.load(Ordering::Relaxed),
            mode_reference: self.mode_reference.load(Ordering::Relaxed),
            mode_adaptive: self.mode_adaptive.load(Ordering::Relaxed),
            adaptive_windows: self.adaptive_windows.load(Ordering::Relaxed),
            adaptive_fallbacks: self.adaptive_fallbacks.load(Ordering::Relaxed),
            tenant_jobs: self.tenant_jobs.load(Ordering::Relaxed),
            pool_busy,
            pool_wall,
            pool_max_workers,
            jobs_cap: crate::runner::jobs_cap(),
        }
    }

    /// A copy of the materialized-run records, in materialization order.
    pub fn records(&self) -> Vec<RunRecord> {
        lock_recover(&self.records).clone()
    }

    /// A copy of the supervised-job failure records reported since this
    /// `Telemetry` was created, in settlement order.
    pub fn failure_records(&self) -> Vec<JobError> {
        let sup = lock_recover(&SUPERVISION);
        let since = self.sup_base_failures.min(sup.failures.len());
        sup.failures[since..].to_vec()
    }

    /// Writes the per-run records as CSV (`key,app,design,source,traced,
    /// wall_ms,cycles,cycles_per_sec,jobs,engine_mode,adaptive_windows,
    /// adaptive_fallbacks,predicted_cycles,estimate_error`), creating
    /// parent directories as needed. The first line is the
    /// `# subcore-run-telemetry schema=N` version tag (see
    /// [`TELEMETRY_SCHEMA_VERSION`] / [`csv_schema_version`]).
    /// Free-form fields are escaped via [`csv_field`]; the `jobs` column
    /// carries the session's worker-count ceiling (empty when uncapped) so
    /// archived telemetry records the pool geometry the wall times were
    /// measured under, and the trailing engine columns record which engine
    /// core produced each result and what the adaptive controller decided.
    /// `predicted_cycles` / `estimate_error` carry the static cost-model
    /// prediction and its relative error for runs that had one on file,
    /// and stay empty otherwise — the columns ride under the same
    /// schema=2 tag because loaders resolve columns by header name
    /// ([`csv_columns`]), so pre-prediction v2 archives and new files
    /// parse identically. The same discipline covers the trailing
    /// multi-tenant columns (`tenant`, `deadline_slack`, `partition_sms`):
    /// they are populated only for per-tenant rows of `repro tenants`
    /// cells and stay empty for ordinary runs. Supervised-job failures
    /// append as rows whose `source` is the failure kind (`panic`,
    /// `timeout`, …) with zero cycles and an empty engine mode, so a
    /// campaign's gaps are archived next to its results.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let jobs = crate::runner::jobs_cap().map_or(String::new(), |n| n.to_string());
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(
            out,
            "# subcore-run-telemetry schema={TELEMETRY_SCHEMA_VERSION} \
             stats_schema={}",
            subcore_engine::STATS_SCHEMA_VERSION
        )?;
        writeln!(
            out,
            "key,app,design,source,traced,wall_ms,cycles,cycles_per_sec,jobs,\
             engine_mode,adaptive_windows,adaptive_fallbacks,predicted_cycles,estimate_error,\
             tenant,deadline_slack,partition_sms"
        )?;
        for r in self.records() {
            let secs = r.wall.as_secs_f64();
            let rate = if secs > 0.0 { r.cycles as f64 / secs } else { f64::NAN };
            let predicted = r.predicted_cycles.map_or(String::new(), |p| p.to_string());
            let error = r.estimate_error().map_or(String::new(), |e| format!("{e:.4}"));
            let tenant =
                r.tenant.as_deref().map_or_else(String::new, |s| csv_field(s).into_owned());
            let slack = r.deadline_slack.map_or(String::new(), |s| s.to_string());
            let sms =
                r.partition_sms.as_deref().map_or_else(String::new, |s| csv_field(s).into_owned());
            writeln!(
                out,
                "{:016x},{},{},{},{},{:.3},{},{:.0},{},{},{},{},{},{},{},{},{}",
                r.key,
                csv_field(&r.app),
                csv_field(&r.design),
                r.source.tag(),
                r.traced,
                secs * 1e3,
                r.cycles,
                rate,
                jobs,
                r.engine_mode,
                r.adaptive_windows,
                r.adaptive_fallbacks,
                predicted,
                error,
                tenant,
                slack,
                sms
            )?;
        }
        for e in self.failure_records() {
            writeln!(
                out,
                "{:016x},{},{},{},false,{:.3},0,nan,{},,0,0,,,,,",
                e.key.unwrap_or(0),
                csv_field(&e.app),
                csv_field(&e.design),
                e.kind.tag(),
                e.elapsed.as_secs_f64() * 1e3,
                jobs
            )?;
        }
        out.flush()
    }
}

/// A point-in-time view of a session's [`Telemetry`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetrySnapshot {
    /// Supervised jobs that settled as failed (panics, simulator errors,
    /// watchdog timeouts; excludes aborted-before-run jobs).
    pub failed: u64,
    /// Retry attempts the supervisor granted to transient failures.
    pub retried: u64,
    /// Supervised jobs abandoned by the wall-clock watchdog (a subset of
    /// `failed`).
    pub timed_out: u64,
    /// Sweep cells skipped because the campaign journal already recorded
    /// them complete (`repro --resume`).
    pub journal_skips: u64,
    /// Trace events dropped by bounded `JsonlSink`s (event limit reached
    /// or a failed write), reported by `repro trace` captures.
    pub trace_drops: u64,
    /// Failed writes to the on-disk result cache (e.g. a read-only
    /// `results/` directory).
    pub cache_write_failures: u64,
    /// Total `run()` calls.
    pub runs: u64,
    /// Runs served from the in-memory memo table.
    pub memo_hits: u64,
    /// Runs served from the on-disk cache.
    pub disk_hits: u64,
    /// Fresh simulations executed.
    pub sims: u64,
    /// Cumulative wall time of fresh simulations (sum over workers, so it
    /// can exceed elapsed real time under the parallel pool).
    pub sim_wall: Duration,
    /// Cumulative cycles simulated by fresh simulations.
    pub sim_cycles: u64,
    /// Fresh simulations that ran with probe tracing enabled.
    pub traced_sims: u64,
    /// Cumulative wall time of traced fresh simulations (a subset of
    /// `sim_wall`; the observable cost of the tracing subsystem).
    pub traced_wall: Duration,
    /// Fresh simulations that ran the event-driven engine.
    pub mode_event: u64,
    /// Fresh simulations that ran the polled reference engine.
    pub mode_reference: u64,
    /// Fresh simulations that ran the adaptive engine.
    pub mode_adaptive: u64,
    /// Adaptive evaluation windows completed across fresh simulations.
    pub adaptive_windows: u64,
    /// Adaptive windows that ended on the reference-scan fallback.
    pub adaptive_fallbacks: u64,
    /// Per-tenant rows recorded by multi-tenant co-schedule cells
    /// (`repro tenants`); counted separately from `sims`, which tallies
    /// whole cells.
    pub tenant_jobs: u64,
    /// Cumulative busy time across all pool workers (since this session's
    /// telemetry was created).
    pub pool_busy: Duration,
    /// Cumulative wall time of `parallel_map` invocations (since this
    /// session's telemetry was created).
    pub pool_wall: Duration,
    /// Largest worker count any `parallel_map` invocation used (since this
    /// session's telemetry was created).
    pub pool_max_workers: usize,
    /// The worker-count ceiling in force (`repro --jobs N` or the
    /// `SUBCORE_JOBS` environment variable), `None` when uncapped.
    pub jobs_cap: Option<usize>,
}

impl TelemetrySnapshot {
    /// Aggregate simulation throughput in simulated cycles per second of
    /// simulation wall time (NaN when nothing was simulated).
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.sim_wall.as_secs_f64();
        if secs > 0.0 {
            self.sim_cycles as f64 / secs
        } else {
            f64::NAN
        }
    }

    /// Fraction of available worker time the pool kept busy, in `0..=1`
    /// (NaN when `parallel_map` never ran).
    pub fn pool_utilization(&self) -> f64 {
        let available = self.pool_wall.as_secs_f64() * self.pool_max_workers as f64;
        if available > 0.0 {
            (self.pool_busy.as_secs_f64() / available).min(1.0)
        } else {
            f64::NAN
        }
    }

    /// Human-readable summary table (the block `repro` prints on exit).
    pub fn summary(&self) -> String {
        let mut s = String::from("session telemetry\n");
        let mut line = |label: &str, value: String| {
            s.push_str(&format!("  {label:<22} {value}\n"));
        };
        line("runs", self.runs.to_string());
        line("  fresh simulations", self.sims.to_string());
        line("  memo hits", self.memo_hits.to_string());
        line("  disk-cache hits", self.disk_hits.to_string());
        line("sim wall time", format!("{:.2}s", self.sim_wall.as_secs_f64()));
        if self.traced_sims > 0 {
            line(
                "  traced (probes on)",
                format!("{} runs, {:.2}s", self.traced_sims, self.traced_wall.as_secs_f64()),
            );
        }
        if self.sims > 0 {
            line(
                "engine modes",
                format!(
                    "{} adaptive, {} event, {} reference",
                    self.mode_adaptive, self.mode_event, self.mode_reference
                ),
            );
        }
        if self.adaptive_windows > 0 {
            line(
                "  adaptive fallbacks",
                format!("{} of {} windows", self.adaptive_fallbacks, self.adaptive_windows),
            );
        }
        if self.tenant_jobs > 0 {
            line("tenant jobs", format!("{} per-tenant rows", self.tenant_jobs));
        }
        line("sim cycles", self.sim_cycles.to_string());
        let rate = self.cycles_per_sec();
        line(
            "sim throughput",
            if rate.is_finite() { format!("{:.2} Mcycles/s", rate / 1e6) } else { "n/a".into() },
        );
        let util = self.pool_utilization();
        line(
            "pool utilization",
            if util.is_finite() {
                format!("{:.0}% of {} workers", util * 100.0, self.pool_max_workers)
            } else {
                "n/a".into()
            },
        );
        line(
            "jobs cap",
            match self.jobs_cap {
                Some(n) => n.to_string(),
                None => "none (all cores)".into(),
            },
        );
        if self.failed + self.retried + self.timed_out > 0 {
            line(
                "supervision",
                format!(
                    "{} failed, {} retried, {} timed out",
                    self.failed, self.retried, self.timed_out
                ),
            );
        }
        if self.journal_skips > 0 {
            line("journal skips", format!("{} cells already complete", self.journal_skips));
        }
        if self.trace_drops > 0 {
            line(
                "trace events dropped",
                format!("{} (bounded sink limit reached; raise --limit)", self.trace_drops),
            );
        }
        if self.cache_write_failures > 0 {
            line(
                "cache write failures",
                format!(
                    "{} (results not persisted; is results/ writable?)",
                    self.cache_write_failures
                ),
            );
        }
        s
    }
}

// `parallel_map` has no handle on a session, so pool usage accumulates in
// a process-wide log. Each `Telemetry` remembers the log position at its
// own construction and reports only what came after (see
// `Telemetry::default`), keeping sessions in the same process independent.
#[derive(Debug)]
struct PoolLog {
    busy_nanos: u64,
    wall_nanos: u64,
    /// Worker count of each `parallel_map` invocation, in order.
    workers: Vec<usize>,
}

static POOL: Mutex<PoolLog> =
    Mutex::new(PoolLog { busy_nanos: 0, wall_nanos: 0, workers: Vec::new() });

/// Reports one `parallel_map` invocation's worker-pool usage.
pub fn note_pool_usage(busy: Duration, wall: Duration, workers: usize) {
    let nanos = |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
    subcore_metrics::gauge_set(mx::POOL_WORKERS, workers as f64);
    subcore_metrics::add(mx::POOL_BUSY_US, u64::try_from(busy.as_micros()).unwrap_or(u64::MAX));
    let mut pool = lock_recover(&POOL);
    pool.busy_nanos = pool.busy_nanos.saturating_add(nanos(busy));
    pool.wall_nanos = pool.wall_nanos.saturating_add(nanos(wall));
    pool.workers.push(workers);
}

// Supervision outcomes accumulate in the same process-wide style as the
// pool log: `supervise_map` has no session handle, so each `Telemetry`
// captures the log position at construction and reports deltas.
#[derive(Debug)]
struct SupLog {
    failed: u64,
    retried: u64,
    timed_out: u64,
    journal_skips: u64,
    trace_drops: u64,
    /// Every failure record reported, in settlement order.
    failures: Vec<JobError>,
}

static SUPERVISION: Mutex<SupLog> = Mutex::new(SupLog {
    failed: 0,
    retried: 0,
    timed_out: 0,
    journal_skips: 0,
    trace_drops: 0,
    failures: Vec::new(),
});

/// Reports one [`crate::supervisor::supervise_map`] sweep's failure totals
/// and per-job failure records.
pub fn note_supervision(failed: u64, retried: u64, timed_out: u64, failures: &[JobError]) {
    let mut sup = lock_recover(&SUPERVISION);
    sup.failed = sup.failed.saturating_add(failed);
    sup.retried = sup.retried.saturating_add(retried);
    sup.timed_out = sup.timed_out.saturating_add(timed_out);
    sup.failures.extend_from_slice(failures);
}

/// Reports sweep cells skipped because the campaign journal already
/// recorded them complete (`repro --resume`).
pub fn note_journal_skips(skipped: u64) {
    subcore_metrics::add(mx::JOURNAL_SKIP, skipped);
    let mut sup = lock_recover(&SUPERVISION);
    sup.journal_skips = sup.journal_skips.saturating_add(skipped);
}

/// Reports trace events a bounded `JsonlSink` dropped (limit reached or
/// write failure) during a `repro trace` capture, surfacing them in the
/// end-of-run summary and as the `trace.events.dropped` metric.
pub fn note_trace_drops(dropped: u64) {
    if dropped == 0 {
        return;
    }
    subcore_metrics::add(mx::TRACE_EVENTS_DROPPED, dropped);
    let mut sup = lock_recover(&SUPERVISION);
    sup.trace_drops = sup.trace_drops.saturating_add(dropped);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(source: RunSource, cycles: u64, wall_ms: u64) -> RunRecord {
        RunRecord {
            key: 0xABCD,
            app: "app".into(),
            design: "baseline".into(),
            source,
            traced: false,
            wall: Duration::from_millis(wall_ms),
            cycles,
            engine_mode: "adaptive",
            adaptive_windows: 0,
            adaptive_fallbacks: 0,
            predicted_cycles: None,
            tenant: None,
            deadline_slack: None,
            partition_sms: None,
        }
    }

    #[test]
    fn counters_split_by_source() {
        let t = Telemetry::default();
        t.note_run();
        t.note_run();
        t.note_run();
        t.note_materialized(record(RunSource::Simulated, 1_000, 10));
        t.note_materialized(record(RunSource::Disk, 2_000, 1));
        t.note_memo_hit();
        let s = t.snapshot();
        assert_eq!(s.runs, 3);
        assert_eq!(s.sims, 1);
        assert_eq!(s.disk_hits, 1);
        assert_eq!(s.memo_hits, 1);
        assert_eq!(s.sim_cycles, 1_000, "disk hits do not count as simulated cycles");
        assert_eq!(s.sim_wall, Duration::from_millis(10));
        assert!((s.cycles_per_sec() - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn empty_snapshot_rates_are_nan() {
        let s = Telemetry::default().snapshot();
        assert!(s.cycles_per_sec().is_nan());
        assert_eq!(s.sims + s.runs + s.memo_hits + s.disk_hits, 0);
    }

    #[test]
    fn summary_mentions_every_counter() {
        let t = Telemetry::default();
        t.note_run();
        t.note_materialized(record(RunSource::Simulated, 5_000_000, 100));
        let text = t.snapshot().summary();
        for needle in
            ["runs", "fresh simulations", "memo hits", "disk-cache hits", "Mcycles/s", "jobs cap"]
        {
            assert!(text.contains(needle), "summary missing `{needle}`:\n{text}");
        }
    }

    #[test]
    fn csv_has_header_and_one_row_per_record() {
        let t = Telemetry::default();
        t.note_materialized(record(RunSource::Simulated, 42, 2));
        t.note_materialized(record(RunSource::Disk, 43, 0));
        let dir = std::env::temp_dir().join(format!("subcore-telemetry-{}", std::process::id()));
        let path = dir.join("run_telemetry.csv");
        t.write_csv(&path).expect("write csv");
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        // Concurrent tests may report supervision failures that append
        // extra rows, so check the materialized-run rows positionally.
        assert!(lines.len() >= 4, "got {} lines", lines.len());
        assert_eq!(
            lines[0],
            format!(
                "# subcore-run-telemetry schema={TELEMETRY_SCHEMA_VERSION} stats_schema={}",
                subcore_engine::STATS_SCHEMA_VERSION
            )
        );
        assert_eq!(csv_schema_version(&text), TELEMETRY_SCHEMA_VERSION);
        assert_eq!(
            lines[1],
            "key,app,design,source,traced,wall_ms,cycles,cycles_per_sec,jobs,\
             engine_mode,adaptive_windows,adaptive_fallbacks,predicted_cycles,estimate_error,\
             tenant,deadline_slack,partition_sms"
        );
        assert!(lines[2].contains(",sim,false,"), "got {}", lines[2]);
        assert!(lines[2].ends_with(",adaptive,0,0,,,,,"), "trailing columns: {}", lines[2]);
        assert!(lines[3].contains(",disk,false,"), "got {}", lines[3]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_schema_version_tolerates_legacy_and_garbage() {
        // Tagged (current) files report their schema.
        assert_eq!(csv_schema_version("# subcore-run-telemetry schema=2 stats_schema=2\nkey\n"), 2);
        assert_eq!(csv_schema_version("# subcore-run-telemetry schema=7\n"), 7);
        // Legacy archives start straight at the header row → v1.
        assert_eq!(csv_schema_version("key,app,design\n1,a,b\n"), 1);
        // Damaged tags and empty input degrade to v1, never error.
        assert_eq!(csv_schema_version("# subcore-run-telemetry schema=zap\n"), 1);
        assert_eq!(csv_schema_version(""), 1);
        // Column extraction skips the tag line (and works on legacy text).
        let tagged = "# subcore-run-telemetry schema=2\nkey,app\n1,a\n";
        assert_eq!(csv_columns(tagged).unwrap(), ["key", "app"]);
        assert_eq!(csv_columns("key,app\n1,a\n").unwrap(), ["key", "app"]);
        assert_eq!(csv_columns(""), None);
    }

    #[test]
    fn written_csv_columns_match_schema() {
        let t = Telemetry::default();
        t.note_materialized(record(RunSource::Simulated, 1, 1));
        let dir =
            std::env::temp_dir().join(format!("subcore-telemetry-cols-{}", std::process::id()));
        let path = dir.join("run_telemetry.csv");
        t.write_csv(&path).expect("write csv");
        let text = std::fs::read_to_string(&path).expect("read back");
        let cols = csv_columns(&text).expect("header row");
        assert_eq!(cols.first().map(String::as_str), Some("key"));
        assert_eq!(cols.last().map(String::as_str), Some("partition_sms"));
        assert_eq!(cols.len(), 17);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prediction_columns_round_trip_through_tolerant_loading() {
        let t = Telemetry::default();
        let mut predicted = record(RunSource::Simulated, 1_000, 3);
        predicted.predicted_cycles = Some(1_250);
        t.note_materialized(predicted);
        t.note_materialized(record(RunSource::Simulated, 2_000, 3)); // no prediction
        let dir =
            std::env::temp_dir().join(format!("subcore-telemetry-pred-{}", std::process::id()));
        let path = dir.join("run_telemetry.csv");
        t.write_csv(&path).expect("write csv");
        let text = std::fs::read_to_string(&path).expect("read back");
        // Tolerant loading: columns are resolved by header name, not
        // position, so the new fields read back exactly and legacy v2
        // archives (12 columns, same tag) still resolve the old fields.
        assert_eq!(csv_schema_version(&text), TELEMETRY_SCHEMA_VERSION);
        let cols = csv_columns(&text).expect("header row");
        let pi = cols.iter().position(|c| c == "predicted_cycles").expect("predicted column");
        let ei = cols.iter().position(|c| c == "estimate_error").expect("error column");
        let rows: Vec<Vec<&str>> = text
            .lines()
            .skip(2)
            .map(|l| l.split(',').collect())
            .filter(|f: &Vec<&str>| f.len() == cols.len())
            .collect();
        assert!(rows.len() >= 2, "both materialized rows survive");
        assert_eq!(rows[0][pi], "1250");
        // |1250 - 1000| / 1000 = 0.25.
        assert_eq!(rows[0][ei], "0.2500");
        assert_eq!(rows[1][pi], "", "prediction-free runs leave the columns empty");
        assert_eq!(rows[1][ei], "");
        // A legacy v2 archive (pre-prediction header) still resolves its
        // columns by name; the new fields are simply absent.
        let legacy = "# subcore-run-telemetry schema=2 stats_schema=2\n\
                      key,app,design,source,traced,wall_ms,cycles,cycles_per_sec,jobs,\
                      engine_mode,adaptive_windows,adaptive_fallbacks\n";
        let legacy_cols = csv_columns(legacy).expect("legacy header");
        assert_eq!(csv_schema_version(legacy), 2);
        assert!(legacy_cols.iter().any(|c| c == "cycles"));
        assert!(!legacy_cols.iter().any(|c| c == "predicted_cycles"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tenant_rows_round_trip_and_count_separately() {
        let t = Telemetry::default();
        t.note_materialized(record(RunSource::Simulated, 10_000, 4)); // the cell itself
        let mut row = record(RunSource::Simulated, 7_000, 0);
        row.tenant = Some("latency".into());
        row.deadline_slack = Some(-250);
        row.partition_sms = Some("2-3".into());
        t.note_tenant_run(row);
        let s = t.snapshot();
        assert_eq!(s.sims, 1, "tenant rows must not inflate the sim count");
        assert_eq!(s.tenant_jobs, 1);
        assert!(s.summary().contains("tenant jobs"), "summary:\n{}", s.summary());
        let dir =
            std::env::temp_dir().join(format!("subcore-telemetry-tenant-{}", std::process::id()));
        let path = dir.join("run_telemetry.csv");
        t.write_csv(&path).expect("write csv");
        let text = std::fs::read_to_string(&path).expect("read back");
        let cols = csv_columns(&text).expect("header row");
        let ti = cols.iter().position(|c| c == "tenant").expect("tenant column");
        let di = cols.iter().position(|c| c == "deadline_slack").expect("slack column");
        let pi = cols.iter().position(|c| c == "partition_sms").expect("partition column");
        let rows: Vec<Vec<&str>> = text
            .lines()
            .skip(2)
            .map(|l| l.split(',').collect())
            .filter(|f: &Vec<&str>| f.len() == cols.len())
            .collect();
        assert_eq!(rows[0][ti], "", "single-app rows leave the tenant columns empty");
        assert_eq!(rows[1][ti], "latency");
        assert_eq!(rows[1][di], "-250");
        assert_eq!(rows[1][pi], "2-3");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn estimate_error_is_relative_and_absent_without_prediction() {
        let mut r = record(RunSource::Simulated, 2_000, 1);
        assert_eq!(r.estimate_error(), None);
        r.predicted_cycles = Some(1_500);
        assert!((r.estimate_error().unwrap() - 0.25).abs() < 1e-12);
        r.predicted_cycles = Some(2_500);
        assert!((r.estimate_error().unwrap() - 0.25).abs() < 1e-12, "error is absolute-valued");
        r.cycles = 0;
        assert_eq!(r.estimate_error(), None, "zero-cycle runs have no defined error");
    }

    #[test]
    fn trace_drops_are_deltas_and_surface_in_summary() {
        // Same delta discipline as the pool/supervision logs: drops
        // reported before construction are invisible, later ones appear.
        note_trace_drops(5_000_000);
        let t = Telemetry::default();
        assert!(t.snapshot().trace_drops < 5_000_000, "inherited prior trace drops");
        assert!(!t.snapshot().summary().contains("trace events dropped"));
        note_trace_drops(0); // zero reports are free and invisible
        note_trace_drops(3);
        let s = t.snapshot();
        assert!(s.trace_drops >= 3, "missed new trace drops: {}", s.trace_drops);
        assert!(s.summary().contains("trace events dropped"));
    }

    #[test]
    fn csv_escapes_app_and_design_names() {
        let t = Telemetry::default();
        t.note_materialized(RunRecord {
            key: 1,
            app: "scan,filter".into(),
            design: "rba \"tuned\"".into(),
            source: RunSource::Simulated,
            traced: true,
            wall: Duration::from_millis(1),
            cycles: 10,
            engine_mode: "event",
            adaptive_windows: 0,
            adaptive_fallbacks: 0,
            predicted_cycles: None,
            tenant: None,
            deadline_slack: None,
            partition_sms: None,
        });
        let dir =
            std::env::temp_dir().join(format!("subcore-telemetry-esc-{}", std::process::id()));
        let path = dir.join("run_telemetry.csv");
        t.write_csv(&path).expect("write csv");
        let text = std::fs::read_to_string(&path).expect("read back");
        let row = text.lines().nth(2).expect("one data row after tag + header");
        assert!(row.contains("\"scan,filter\""), "app not quoted: {row}");
        assert!(row.contains("\"rba \"\"tuned\"\"\""), "design not quoted: {row}");
        // Escaped, the row has exactly the 14 header fields: the embedded
        // comma and quotes no longer split it.
        let header_fields = csv_columns(&text).unwrap().len();
        let mut fields = 0;
        let mut in_quotes = false;
        for c in row.chars() {
            match c {
                '"' => in_quotes = !in_quotes,
                ',' if !in_quotes => fields += 1,
                _ => {}
            }
        }
        assert_eq!(fields + 1, header_fields, "row field count: {row}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traced_runs_counted_separately() {
        let t = Telemetry::default();
        let mut traced = record(RunSource::Simulated, 1_000, 30);
        traced.traced = true;
        t.note_materialized(traced);
        t.note_materialized(record(RunSource::Simulated, 2_000, 50));
        let s = t.snapshot();
        assert_eq!(s.sims, 2);
        assert_eq!(s.traced_sims, 1);
        assert_eq!(s.traced_wall, Duration::from_millis(30));
        assert_eq!(s.sim_wall, Duration::from_millis(80));
        assert!(s.summary().contains("traced (probes on)"));
    }

    fn failure(app: &str, kind: crate::supervisor::JobErrorKind) -> JobError {
        JobError {
            app: app.into(),
            design: "rba".into(),
            kind,
            payload: "boom".into(),
            attempts: 2,
            elapsed: Duration::from_millis(7),
            key: Some(0xFEED),
        }
    }

    #[test]
    fn supervision_counters_are_deltas_since_construction() {
        use crate::supervisor::JobErrorKind;
        // Other tests report small real supervision totals concurrently, so
        // compare against distinctive magnitudes rather than zero (same
        // strategy as the pool-usage test below).
        note_supervision(
            1_000_000,
            2_000_000,
            3_000_000,
            &[failure("earlier", JobErrorKind::Panic)],
        );
        let t = Telemetry::default();
        let s = t.snapshot();
        assert!(s.failed < 1_000_000, "inherited prior failed count: {}", s.failed);
        assert!(s.retried < 2_000_000, "inherited prior retried count: {}", s.retried);
        assert!(s.timed_out < 3_000_000, "inherited prior timeout count: {}", s.timed_out);
        assert!(
            !t.failure_records().iter().any(|e| e.app == "earlier"),
            "inherited prior failure records"
        );
        note_supervision(2, 5, 1, &[failure("mine", JobErrorKind::TimedOut)]);
        note_journal_skips(4);
        let s = t.snapshot();
        assert!(s.failed >= 2 && s.retried >= 5 && s.timed_out >= 1, "missed new supervision");
        assert!(s.journal_skips >= 4);
        assert!(t.failure_records().iter().any(|e| e.app == "mine"));
        let text = s.summary();
        assert!(text.contains("supervision"), "summary missing supervision line:\n{text}");
        assert!(text.contains("journal skips"), "summary missing journal skips:\n{text}");
    }

    #[test]
    fn engine_modes_aggregate_in_snapshot_and_summary() {
        let t = Telemetry::default();
        let mut adaptive = record(RunSource::Simulated, 1_000, 5);
        adaptive.adaptive_windows = 10;
        adaptive.adaptive_fallbacks = 3;
        t.note_materialized(adaptive);
        let mut reference = record(RunSource::Simulated, 1_000, 5);
        reference.engine_mode = "reference";
        t.note_materialized(reference);
        // Disk hits don't count: their engine never ran in this process.
        let mut disk = record(RunSource::Disk, 1_000, 0);
        disk.engine_mode = "event";
        t.note_materialized(disk);
        let s = t.snapshot();
        assert_eq!((s.mode_adaptive, s.mode_reference, s.mode_event), (1, 1, 0));
        assert_eq!((s.adaptive_windows, s.adaptive_fallbacks), (10, 3));
        let text = s.summary();
        assert!(text.contains("engine modes"), "summary missing engine modes:\n{text}");
        assert!(text.contains("3 of 10 windows"), "summary missing fallbacks:\n{text}");
    }

    #[test]
    fn cache_write_failures_surface_in_summary() {
        let t = Telemetry::default();
        assert!(!t.snapshot().summary().contains("cache write failures"));
        t.note_cache_write_failure();
        t.note_cache_write_failure();
        let s = t.snapshot();
        assert_eq!(s.cache_write_failures, 2);
        assert!(s.summary().contains("cache write failures"));
    }

    #[test]
    fn csv_appends_failure_rows() {
        use crate::supervisor::JobErrorKind;
        let t = Telemetry::default();
        t.note_materialized(record(RunSource::Simulated, 42, 2));
        note_supervision(1, 0, 0, &[failure("deadapp", JobErrorKind::Panic)]);
        let dir =
            std::env::temp_dir().join(format!("subcore-telemetry-fail-{}", std::process::id()));
        let path = dir.join("run_telemetry.csv");
        t.write_csv(&path).expect("write csv");
        let text = std::fs::read_to_string(&path).expect("read back");
        let row = text.lines().find(|l| l.contains("deadapp")).expect("failure row present in CSV");
        assert!(row.contains(",panic,false,"), "kind tag is the source column: {row}");
        assert!(row.contains("000000000000feed"), "failure row carries the key: {row}");
        assert!(row.ends_with(",,0,0,,,,,"), "failure rows carry empty trailing columns: {row}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fresh_telemetry_does_not_inherit_pool_usage() {
        // First "session" reports distinctive pool usage…
        note_pool_usage(Duration::from_secs(40_000), Duration::from_secs(50_000), 4096);
        // …which a telemetry block created afterwards must not see. (Other
        // tests may report small real pool usage concurrently, so compare
        // against the distinctive magnitudes rather than zero.)
        let t = Telemetry::default();
        let s = t.snapshot();
        assert!(
            s.pool_busy < Duration::from_secs(40_000),
            "inherited prior busy time: {:?}",
            s.pool_busy
        );
        assert!(
            s.pool_wall < Duration::from_secs(50_000),
            "inherited prior wall time: {:?}",
            s.pool_wall
        );
        assert!(s.pool_max_workers < 4096, "inherited prior max workers: {}", s.pool_max_workers);
        // Usage reported after construction is visible.
        note_pool_usage(Duration::from_secs(20_000), Duration::from_secs(30_000), 2048);
        let s = t.snapshot();
        assert!(s.pool_busy >= Duration::from_secs(20_000));
        assert!(s.pool_wall >= Duration::from_secs(30_000));
        assert!(s.pool_max_workers >= 2048, "missed post-construction usage");
    }
}
