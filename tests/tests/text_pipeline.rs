//! End-to-end: a kernel authored in the SASS-like text format parses,
//! disassembles, and simulates identically to its builder-API equivalent.

use subcore_engine::simulate_app;
use subcore_integration::{run, test_gpu};
use subcore_isa::{
    disassemble_kernel, parse_program, App, KernelBuilder, ProgramBuilder, Reg, Suite,
};
use subcore_sched::Design;

fn kernel_from(program: std::sync::Arc<subcore_isa::WarpProgram>) -> App {
    let kernel = KernelBuilder::new("text")
        .blocks(4)
        .warps_per_block(8)
        .regs_per_thread(16)
        .uniform_program(program)
        .build();
    App::new("text", Suite::Micro, vec![kernel])
}

#[test]
fn text_and_builder_kernels_simulate_identically() {
    let built = ProgramBuilder::new()
        .repeat(64, |b| {
            b.fma(Reg(8), Reg(0), Reg(2), Reg(4));
            b.iadd(Reg(9), Reg(1), Reg(3));
            b.load_global(Reg(10), Reg(5), 1, 128);
        })
        .barrier()
        .build();
    let text = "
        .repeat 64 {
            ffma r8, r0, r2, r4
            iadd r9, r1, r3
            ldg r10, [r5], region=1, step=128
        }
        bar.sync
    ";
    let parsed = parse_program(text).expect("listing parses");
    let a = run(Design::Baseline, &kernel_from(built));
    let b = run(Design::Baseline, &kernel_from(parsed));
    assert_eq!(a.cycles, b.cycles, "identical programs, identical timing");
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.rf_reads, b.rf_reads);
}

#[test]
fn disassembly_of_registry_kernel_reparses_and_matches() {
    // Round-trip a real registry kernel's uniform program through the text
    // format and check the simulation is bit-identical.
    let app = subcore_workloads::app_by_name("ply-gemm").expect("registry app");
    let kernel = &app.kernels()[0];
    let listing = disassemble_kernel(kernel);
    // Extract the program body (skip the header and .warps line).
    let body: String = listing
        .lines()
        .filter(|l| !l.starts_with('#') && !l.starts_with(".warp"))
        .collect::<Vec<_>>()
        .join("\n");
    let parsed = parse_program(&body).expect("disassembly reparses");
    let rebuilt = KernelBuilder::new(kernel.name())
        .blocks(kernel.blocks())
        .warps_per_block(kernel.warps_per_block())
        .regs_per_thread(kernel.regs_per_thread())
        .shared_mem_bytes(kernel.shared_mem_bytes())
        .uniform_program(parsed)
        .build();
    let original = simulate_app(
        &test_gpu(),
        &Design::Baseline.policies(),
        &App::new("orig", Suite::Micro, vec![kernel.clone()]),
    )
    .unwrap();
    let roundtrip = simulate_app(
        &test_gpu(),
        &Design::Baseline.policies(),
        &App::new("rt", Suite::Micro, vec![rebuilt]),
    )
    .unwrap();
    assert_eq!(original.cycles, roundtrip.cycles);
    assert_eq!(original.instructions, roundtrip.instructions);
}
