//! Process-level serve recovery: a real `repro serve` daemon child is
//! SIGKILL'd mid-campaign and restarted over the same durable queue; the
//! campaign must settle with no lost jobs, no duplicated jobs, reclaimed
//! leases re-executed, and results bit-exact vs an uninterrupted
//! in-process reference. This is the acceptance drill behind
//! `repro chaos --serve`, pinned here so `cargo test` enforces it.

use std::path::PathBuf;

use subcore_experiments::{run_serve_drill, ServeDrillOptions};

#[test]
fn sigkill_and_restart_settle_bit_exact_with_no_loss_or_duplication() {
    let exe = PathBuf::from(env!("CARGO_BIN_EXE_repro"));
    let dir = std::env::temp_dir().join(format!("subcore-serve-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ServeDrillOptions::headline(exe, dir.clone());
    let report = run_serve_drill(&opts);
    let rendered = report.render();
    let _ = std::fs::remove_dir_all(&dir);

    assert!(report.ok(), "drill failed:\n{rendered}");
    assert_eq!(report.submitted, opts.specs.len(), "{rendered}");
    assert_eq!(report.restored, report.submitted, "no job may be lost:\n{rendered}");
    assert_eq!(report.done_after, report.submitted, "every job settles done:\n{rendered}");
    assert!(report.clean_exit, "drain must exit 0:\n{rendered}");
    // Lease reclamation: the drill kills the daemon only once a job is
    // leased mid-flight (or, in the unlikely case the campaign finished
    // between two 10ms polls, everything was already done — in which case
    // replay covered the whole queue instead).
    assert!(
        report.reclaimed >= 1 || report.done_before_kill == report.submitted,
        "the kill should land on a leased job:\n{rendered}"
    );
    assert!(report.replayed >= report.done_before_kill, "done work never re-runs:\n{rendered}");
}
