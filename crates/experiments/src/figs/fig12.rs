//! Fig. 12: collector-unit scaling speedup, normalized to 2 CUs/sub-core
//! (banks held constant at 2), compared against RBA and the
//! fully-connected SM.
//!
//! Paper headlines: 4/8/16 CUs → +4.1 / +7.1 / +9.6 % with clearly
//! diminishing returns; RBA (+11.9 % on this subset) outperforms all of
//! them at ~1 % of the cost.

use crate::report::Table;
use crate::runner::suite_base;
use crate::sweep::speedup_table;
use subcore_sched::Design;
use subcore_workloads::sensitive_apps;

/// Runs the experiment.
pub fn run() -> Table {
    speedup_table(
        "fig12_cu_scaling",
        "CU scaling vs. RBA vs. fully-connected (speedup over 2 CUs/sub-core)",
        &suite_base(),
        &sensitive_apps(),
        &[
            Design::CuScaling(4),
            Design::CuScaling(8),
            Design::CuScaling(16),
            Design::Rba,
            Design::FullyConnected,
        ],
    )
}
