//! Diagnostic probe: SRR speedup and baseline issue-CV for all 22 TPC-H
//! queries — the tool used to calibrate the per-query shape table against
//! the paper's Figs. 15–17.
//!
//! ```text
//! cargo run --release -p subcore-experiments --example probe_tpch_all [c]
//! ```
//!
//! Pass `c` to probe the compressed variant.

use subcore_experiments::{run_design, speedup, tpch_base};
use subcore_sched::Design;
use subcore_workloads::tpch_query;

fn main() {
    let compressed = std::env::args().nth(1).as_deref() == Some("c");
    let mut sp_sum = 0.0;
    let mut cv_sum = 0.0;
    for q in 1..=22u32 {
        let app = tpch_query(q, compressed);
        let base = run_design(&tpch_base(), Design::Baseline, &app);
        let srr = run_design(&tpch_base(), Design::Srr, &app);
        let sp = 100.0 * (speedup(&base, &srr) - 1.0);
        let cv = base.issue_cv().unwrap_or(f64::NAN);
        sp_sum += sp;
        cv_sum += cv;
        println!("q{q:<2} srr {sp:+6.1}%  cv={cv:.2}");
    }
    println!("MEAN srr {:+.1}%  cv={:.2}", sp_sum / 22.0, cv_sum / 22.0);
}
