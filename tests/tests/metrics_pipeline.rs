//! End-to-end metrics pipeline: a supervised sweep instrumented through
//! the global registry, exported as a snapshot stream, loaded back, and
//! rendered as both the `repro top` dashboard and Prometheus text.
//!
//! This file is its own test binary with a single test, so enabling the
//! process-wide metrics gate races with nothing.

use std::time::Duration;

use subcore_experiments::journal::Journal;
use subcore_experiments::sweep::run_cell_sweep_on;
use subcore_experiments::{render_frame, render_metrics_summary, SimSession, SupervisorPolicy};
use subcore_isa::{fma_kernel, App, Suite};
use subcore_metrics::names as mx;
use subcore_metrics::{load_snapshots, render_prometheus, validate_prometheus, SnapshotWriter};
use subcore_sched::Design;

#[test]
fn sweep_metrics_export_load_and_render_round_trip() {
    let root =
        std::env::temp_dir().join(format!("subcore-metrics-pipeline-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    subcore_metrics::set_enabled(true);

    let apps: Vec<App> = (0..2)
        .map(|i| App::new(format!("mx-{i}"), Suite::Micro, vec![fma_kernel("k", 2, 4 + i, 32)]))
        .collect();
    let base = subcore_engine::GpuConfig::volta_v100().with_sms(1).with_max_cycles(5_000_000);
    let journal = Journal::open(root.join(".journal"), "metrics-drill");
    let sess = SimSession::in_memory();
    let out = run_cell_sweep_on(
        &sess,
        Some(&journal),
        false,
        &base,
        &apps,
        &[Design::Rba],
        &SupervisorPolicy { backoff: Duration::ZERO, ..SupervisorPolicy::default() },
        None,
    );
    assert!(out.failures.is_empty(), "clean sweep: {:?}", out.failures);

    // Export the global registry the way the runner's periodic flusher
    // does, then load it back from disk.
    let mut writer = SnapshotWriter::new(root.join(".metrics"), "metrics-drill");
    let path = writer.tick(subcore_metrics::global()).expect("snapshot write lands");
    let snaps = load_snapshots(&path);
    assert!(!snaps.is_empty(), "the stream holds the tick");
    let last = snaps.last().unwrap();

    // The sweep's instrumentation is all visible in the loaded snapshot.
    let cells = (apps.len() * 2) as u64;
    assert!(last.counter(mx::SESSION_SIM).unwrap_or(0) >= cells, "every cell simulated");
    assert!(last.counter(mx::SUPERVISOR_JOB_DONE).unwrap_or(0) >= cells);
    assert_eq!(
        last.counter(mx::JOURNAL_RECORD_DONE).unwrap_or(0),
        cells,
        "journal writes counted once per cell"
    );
    assert!(last.counter(mx::ENGINE_CYCLES).unwrap_or(0) > 0, "cycles attributed");
    let wall = last.histogram(mx::SESSION_SIM_WALL_US).expect("sim wall histogram registered");
    assert!(wall.count >= cells);
    assert!(
        last.span_aggs.iter().any(|a| a.kind == "campaign"),
        "campaign span closed: {:?}",
        last.span_aggs
    );
    assert!(
        last.span_aggs.iter().any(|a| a.kind == "campaign/job"),
        "job spans closed under the campaign"
    );
    assert!(
        last.span_aggs.iter().any(|a| a.kind == "campaign/job/simulate"),
        "simulate phase spans closed under jobs"
    );

    // Both renderers work from the loaded stream.
    let frame = render_frame(&snaps);
    assert!(frame.contains("jobs"), "frame renders job totals:\n{frame}");
    assert!(frame.contains("metrics-drill"), "campaign appears in spans:\n{frame}");
    let summary = render_metrics_summary(last);
    assert!(summary.contains(mx::SESSION_SIM), "summary lists counters:\n{summary}");

    // Prometheus text parses and carries the instrumented families.
    let prom = render_prometheus(last);
    let samples = validate_prometheus(&prom).expect("rendered text validates");
    assert!(samples > 10, "a real campaign yields many samples, got {samples}");
    assert!(prom.contains("subcore_session_sim"), "sanitized names present:\n{prom}");

    std::fs::remove_dir_all(&root).ok();
}
