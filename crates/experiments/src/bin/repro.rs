//! `repro` — regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro <experiment>... | all [--out DIR] [--jobs N] [--resume]
//!       [--retries N] [--job-timeout SECS] [--fail-fast] [--max-failures N]
//! repro status [--out DIR] [--watch] [--interval MS] [--frames N]
//! repro top [--out DIR] [--once] [--interval MS] [--frames N]
//! repro metrics [--out DIR] [--prom]
//! repro chaos [--seed S] [--fault-rate P] [--out DIR] [--serve]
//! repro serve [--port P] [--dir DIR] [--addr-file PATH] [--capacity N]
//!             [--serve-workers N] [--lease-ms MS] [--max-attempts N]
//! repro submit <app>... [--design D] [--sms N] [--max-cycles N]
//!             (--addr HOST:PORT | --addr-file PATH) [--wait] [--timeout SECS]
//! repro jobs (--addr HOST:PORT | --addr-file PATH) [--healthz|--metrics|--drain]
//! repro trace <fig|app> [--design D]... [--window N] [--events LIMIT]
//! repro trace-diff <fig|app> [--design A --design B] [--window N]
//! repro lint <app>... | --all [--design D] [--json] [--deny-warnings]
//! repro lint --calibrate [<app>...] [--window N] [--json]
//! repro estimate <app>... | --all [--design D] [--json]
//! repro estimate --calibrate [--json]
//! repro opt <app>... | --all
//! repro tenants [--mix NAME]... [--out DIR] [--resume]
//! repro bench-engine [--out DIR] [--check] [--baseline PATH]
//!
//! experiments: fig1 fig3 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15
//!              fig16 fig17 fig18 latency banks hashtable contribution
//! ```
//!
//! Each experiment prints its table(s) and writes `<out>/<name>.csv`
//! (default `results/`). Pass `--bars` to also render each table's first
//! column as an ASCII bar chart.
//!
//! `trace` captures the windowed probe time-series of the target workload
//! under each `--design` (default `baseline`) into
//! `<out>/traces/<app>.<design>.w<N>.json`; `--events LIMIT` additionally
//! streams up to LIMIT raw probe events to a JSONL file next to it.
//! `trace-diff` captures two designs (default `baseline` vs `rba`) and
//! prints where their bank-queue and issue-imbalance trajectories diverge.
//!
//! `lint` statically analyzes workloads (dataflow, bank pressure,
//! divergence, configuration) without simulating; `--all` covers the full
//! registry and is the verify-gate invocation. `lint --calibrate` ranks
//! apps by static bank pressure and correlates the ranking against traced
//! mean bank-queue depths.
//!
//! `estimate` prints the static cost model's per-design cycle predictions
//! (issue-, bank-, and divergence-bound decomposition) without
//! simulating. `estimate --calibrate` sweeps the 112-app registry,
//! simulating each app to score the predictions: it writes
//! `<out>/estimate_calibration.json` and exits nonzero if the Spearman
//! rank correlation falls below the 0.8 floor (the verify-gate
//! invocation). `opt` prints the conflict-free register remapper's
//! per-kernel evidence — the fix `lint`'s L036 advisory names.
//!
//! `tenants` is the multi-tenant spatial-partitioning sweep: every
//! registered tenant mix (or the `--mix` selection) is co-scheduled under
//! {baseline, rba, srr, shuffle} × {rigid, contention-aware} partitions,
//! producing one interference matrix per mix
//! (`<out>/tenants_<mix>.csv`, tenant slowdown vs solo full-GPU run) and
//! a deadline-slack table (`<out>/tenants_deadlines.csv`). Cells journal
//! under the `tenants` campaign, so `--resume` replays finished cells;
//! per-tenant rows land in the telemetry CSV's `tenant`/`deadline_slack`/
//! `partition_sms` columns and `tenant.*` metrics feed `repro top`.
//!
//! `serve` runs the long-lived simulation daemon: a durable job queue
//! with lease-based ownership, bounded admission with structured
//! backpressure, and cross-client coalescing by `SimKey` (see DESIGN.md's
//! service-architecture section). `submit` posts jobs to it (`--wait`
//! polls to settlement) and `jobs` lists the queue or probes
//! `--healthz`/`--metrics`/`--drain`. `chaos --serve` is the
//! process-level recovery drill: SIGKILL a real daemon child
//! mid-campaign, restart it over the same queue, and verify the campaign
//! settles bit-exact with no lost or duplicated jobs.
//!
//! Sweeps start their longest-predicted cells first (cost-aware LPT
//! ordering; predictions also land in the telemetry CSV's
//! `predicted_cycles`/`estimate_error` columns). `--no-reorder` restores
//! submission order.
//!
//! `bench-engine` is the engine-mode perf smoke: it runs the headline
//! workload subset under both the shipping adaptive engine and the
//! polled reference (bypassing the session cache so timings are honest),
//! fails if any stats diverge, and writes the measured speedups to
//! `<out>/BENCH_engine.json`. With `--check` it instead compares the
//! fresh measurements against the committed baseline (default
//! `<out>/BENCH_engine.json`, override with `--baseline PATH`) and exits
//! nonzero if any case loses to the reference or the geomean falls below
//! the baseline's recorded floor; the baseline file is left untouched.
//!
//! Simulations are memoized on disk under `<out>/.simcache/` (keyed by a
//! content fingerprint and stamped with the engine version), so re-running
//! an experiment replays cached results instead of simulating; pass
//! `--no-cache` for a purely in-memory session. A telemetry summary is
//! printed on exit and the per-run breakdown written to
//! `<out>/run_telemetry.csv`. `--jobs N` (or the `SUBCORE_JOBS`
//! environment variable) caps the worker pool's thread count; the cap in
//! force is recorded in the telemetry summary and CSV.
//!
//! Sweeps run supervised: a panicking, erroring, or wedged (app, design)
//! cell costs exactly that cell, rendered as an annotated gap. `--retries N`
//! grants transient failures extra attempts, `--job-timeout SECS` overrides
//! the derived per-cell watchdog deadline (0 disables it), and the exit
//! code stays zero on partial results unless `--fail-fast` or
//! `--max-failures N` says otherwise. Completed cells are journaled under
//! `<out>/.journal/<campaign>/`; `--resume` replays journaled cells instead
//! of recomputing them and `repro status` prints per-campaign progress.
//! `repro chaos` runs the deterministic fault-injection drill: a faulted,
//! mid-campaign-killed sweep followed by a `--resume` completion, verified
//! bit-exact against a fault-free reference.
//!
//! Experiment runs also stream periodic metrics snapshots (counters,
//! gauges, histograms, and the campaign → job → phase span tree) to
//! `<out>/.metrics/<stream>.jsonl`. `repro top` tails the newest stream
//! as a live dashboard (`--once` prints a single frame and exits),
//! `repro metrics` dumps the latest snapshot — human-readable by
//! default, Prometheus text exposition with `--prom` — and
//! `repro status --watch` re-renders campaign progress on an interval.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};
use subcore_experiments::{chaos, engine_bench, estimate, figs, journal, lint, serve, trace};
use subcore_experiments::{init_global, suite_base, tpch_base, SessionOptions, SimSession, Table};
use subcore_experiments::{set_policy, SupervisorPolicy};
use subcore_isa::Suite;
use subcore_persist::{Json, JsonCodec};
use subcore_sched::Design;
use subcore_serve::{JobSpec, ServeOptions, Server};

/// Tolerance band on the `bench-engine --check` per-case parity floor: a
/// case only fails below `1.0 - TOLERANCE`. Dense ~40ms cases have been
/// observed swinging ±10% run-to-run on loaded machines, so the band is
/// sized to catch real fast-path regressions (which show up as 2x), not
/// scheduler noise.
const BENCH_SPEEDUP_TOLERANCE: f64 = 0.12;

const EXPERIMENTS: &[&str] = &[
    "fig1",
    "fig3",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "latency",
    "banks",
    "hashtable",
    "contribution",
    "ext-imbalance",
    "ext-dual-issue",
    "ext-memory",
    "ext-schedulers",
    "characterize",
    "topdown",
];

fn run_one(name: &str) -> Option<Vec<Table>> {
    let tables = match name {
        "fig1" => vec![figs::fig01::run()],
        "fig3" => vec![figs::fig03::run()],
        "fig8" => vec![figs::fig08::run()],
        "fig9" => vec![figs::fig09::run()],
        "fig10" => vec![figs::fig10::run()],
        "fig11" => vec![figs::fig11::run()],
        "fig12" => vec![figs::fig12::run()],
        "fig13" => vec![figs::fig13::run()],
        "fig14" => {
            let mut ts = vec![figs::fig14::run()];
            ts.extend(figs::fig14::traces(256));
            ts
        }
        "fig15" => vec![figs::fig15_16::run(true)],
        "fig16" => vec![figs::fig15_16::run(false)],
        "fig17" => vec![figs::fig17::run()],
        "fig18" => vec![figs::fig18::run()],
        "latency" => vec![figs::ablations::score_latency()],
        "banks" => vec![figs::ablations::bank_scaling()],
        "hashtable" => vec![figs::ablations::hash_table_size()],
        "contribution" => vec![figs::ablations::contribution()],
        "ext-imbalance" => vec![figs::extensions::imbalance_mechanisms()],
        "ext-dual-issue" => vec![figs::extensions::dual_issue()],
        "ext-memory" => vec![figs::extensions::memory_model_robustness()],
        "ext-schedulers" => vec![figs::extensions::scheduler_comparison()],
        "characterize" => vec![figs::characterization::run()],
        "topdown" => figs::topdown::run(),
        _ => return None,
    };
    Some(tables)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = PathBuf::from("results");
    let bars = if let Some(i) = args.iter().position(|a| a == "--bars") {
        args.remove(i);
        true
    } else {
        false
    };
    let no_cache = if let Some(i) = args.iter().position(|a| a == "--no-cache") {
        args.remove(i);
        true
    } else {
        false
    };
    if let Some(i) = args.iter().position(|a| a == "--no-reorder") {
        args.remove(i);
        subcore_experiments::set_reorder(false);
    }
    if let Some(i) = args.iter().position(|a| a == "--out") {
        if i + 1 >= args.len() {
            eprintln!("--out needs a directory argument");
            return ExitCode::FAILURE;
        }
        out_dir = PathBuf::from(args.remove(i + 1));
        args.remove(i);
    }
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        if i + 1 >= args.len() {
            eprintln!("--jobs needs a positive worker count");
            return ExitCode::FAILURE;
        }
        let v = args.remove(i + 1);
        args.remove(i);
        match v.parse::<usize>() {
            Ok(n) if n > 0 => {
                subcore_experiments::set_jobs(n);
            }
            _ => {
                eprintln!("--jobs needs a positive worker count, got `{v}`");
                return ExitCode::FAILURE;
            }
        }
    }
    // Supervision knobs: every flag feeds the process-wide policy the
    // supervised sweeps resolve on first use.
    let take_flag = |args: &mut Vec<String>, flag: &str| -> bool {
        if let Some(i) = args.iter().position(|a| a == flag) {
            args.remove(i);
            true
        } else {
            false
        }
    };
    let take_value = |args: &mut Vec<String>, flag: &str| -> Result<Option<String>, String> {
        let Some(i) = args.iter().position(|a| a == flag) else { return Ok(None) };
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs an argument"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    };
    let fail_fast = take_flag(&mut args, "--fail-fast");
    let resume = take_flag(&mut args, "--resume");
    let max_failures = match take_value(&mut args, "--max-failures") {
        Ok(v) => match v.map(|v| v.parse::<u64>().map_err(|_| v)).transpose() {
            Ok(n) => n,
            Err(v) => {
                eprintln!("--max-failures needs a failure count, got `{v}`");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let retries = match take_value(&mut args, "--retries") {
        Ok(v) => match v.map(|v| v.parse::<u32>().map_err(|_| v)).transpose() {
            Ok(n) => n,
            Err(v) => {
                eprintln!("--retries needs a retry count, got `{v}`");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let job_timeout = match take_value(&mut args, "--job-timeout") {
        Ok(v) => match v.map(|v| v.parse::<u64>().map_err(|_| v)).transpose() {
            Ok(n) => n.map(Duration::from_secs),
            Err(v) => {
                eprintln!("--job-timeout needs a deadline in seconds (0 disables), got `{v}`");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if fail_fast || resume || max_failures.is_some() || retries.is_some() || job_timeout.is_some() {
        let defaults = SupervisorPolicy::default();
        set_policy(SupervisorPolicy {
            retries: retries.unwrap_or(defaults.retries),
            job_timeout: job_timeout.or(defaults.job_timeout),
            fail_fast,
            max_failures,
            ..defaults
        });
    }
    journal::set_resume(resume);
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: repro <experiment>... | all | summary [--out DIR] [--bars] [--no-cache] [--jobs N]"
        );
        eprintln!("             [--resume] [--retries N] [--job-timeout SECS] [--fail-fast] [--max-failures N]");
        eprintln!("       repro status [--out DIR] [--watch] [--interval MS] [--frames N]");
        eprintln!("       repro top [--out DIR] [--once] [--interval MS] [--frames N]");
        eprintln!("       repro metrics [--out DIR] [--prom]");
        eprintln!("       repro chaos [--seed S] [--fault-rate P] [--out DIR] [--serve]");
        eprintln!("       repro serve [--port P] [--dir DIR] [--addr-file PATH] [--capacity N]");
        eprintln!("                   [--serve-workers N] [--lease-ms MS] [--max-attempts N]");
        eprintln!("       repro submit <app>... [--design D] [--sms N] [--max-cycles N]");
        eprintln!(
            "                   (--addr HOST:PORT | --addr-file PATH) [--wait] [--timeout SECS]"
        );
        eprintln!(
            "       repro jobs (--addr HOST:PORT | --addr-file PATH) [--healthz|--metrics|--drain]"
        );
        eprintln!("       repro trace <fig|app> [--design D]... [--window N] [--events LIMIT]");
        eprintln!("       repro trace-diff <fig|app> [--design A --design B] [--window N]");
        eprintln!("       repro lint <app>... | --all [--design D] [--json] [--deny-warnings]");
        eprintln!("       repro lint --calibrate [<app>...] [--window N] [--json]");
        eprintln!("       repro estimate <app>... | --all | --calibrate [--design D] [--json]");
        eprintln!("       repro opt <app>... | --all");
        eprintln!("       repro tenants [--mix NAME]... [--out DIR] [--resume]");
        eprintln!("       repro bench-engine [--out DIR] [--check] [--baseline PATH]");
        eprintln!("experiments: {}", EXPERIMENTS.join(" "));
        return if args.is_empty() { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }
    if args.iter().any(|a| a == "summary") {
        print!("{}", subcore_experiments::summary::render(&out_dir));
        return ExitCode::SUCCESS;
    }
    if args[0] == "status" {
        args.remove(0);
        let watch = take_flag(&mut args, "--watch");
        let (interval, frames) = match take_watch_knobs(&mut args, 2000) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        if !args.is_empty() {
            eprintln!("status takes no further arguments, got: {args:?}");
            return ExitCode::FAILURE;
        }
        let journal_root = out_dir.join(".journal");
        if !watch {
            print!("{}", journal::render_status(&journal_root));
            return ExitCode::SUCCESS;
        }
        let mut shown = 0u64;
        loop {
            print!("\x1b[2J\x1b[H{}", journal::render_status(&journal_root));
            shown += 1;
            if shown >= frames {
                return ExitCode::SUCCESS;
            }
            std::thread::sleep(interval);
        }
    }
    if args[0] == "top" {
        args.remove(0);
        let once = take_flag(&mut args, "--once");
        let (interval, frames) = match take_watch_knobs(&mut args, 1000) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        if !args.is_empty() {
            eprintln!("top takes no further arguments, got: {args:?}");
            return ExitCode::FAILURE;
        }
        let dir = out_dir.join(".metrics");
        let frames = if once { 1 } else { frames };
        let mut shown = 0u64;
        loop {
            let snaps = subcore_metrics::latest_stream(&dir)
                .map(|p| subcore_metrics::load_snapshots(&p))
                .unwrap_or_default();
            if !once {
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", subcore_experiments::render_frame(&snaps));
            shown += 1;
            if shown >= frames {
                return ExitCode::SUCCESS;
            }
            std::thread::sleep(interval);
        }
    }
    if args[0] == "metrics" {
        args.remove(0);
        let prom = take_flag(&mut args, "--prom");
        if !args.is_empty() {
            eprintln!("metrics takes no further arguments, got: {args:?}");
            return ExitCode::FAILURE;
        }
        let dir = out_dir.join(".metrics");
        let Some(path) = subcore_metrics::latest_stream(&dir) else {
            eprintln!("no metrics snapshots under {} (run an experiment first)", dir.display());
            return ExitCode::FAILURE;
        };
        let snaps = subcore_metrics::load_snapshots(&path);
        let Some(last) = snaps.last() else {
            eprintln!("{} holds no decodable snapshots", path.display());
            return ExitCode::FAILURE;
        };
        if prom {
            let text = subcore_metrics::render_prometheus(last);
            return match subcore_metrics::validate_prometheus(&text) {
                Ok(samples) => {
                    print!("{text}");
                    eprintln!("# {samples} samples from {}", path.display());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("internal error: Prometheus rendering failed validation: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        print!("{}", subcore_experiments::render_metrics_summary(last));
        return ExitCode::SUCCESS;
    }
    if args[0] == "chaos" {
        args.remove(0);
        let serve_drill = take_flag(&mut args, "--serve");
        let mut seed: u64 = 42;
        let mut rate: f64 = 0.3;
        match take_value(&mut args, "--seed") {
            Ok(Some(s)) => match s.parse::<u64>() {
                Ok(s) => seed = s,
                Err(_) => {
                    eprintln!("--seed needs an integer seed, got `{s}`");
                    return ExitCode::FAILURE;
                }
            },
            Ok(None) => {}
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        match take_value(&mut args, "--fault-rate") {
            Ok(Some(r)) => match r.parse::<f64>() {
                Ok(r) if (0.0..=1.0).contains(&r) => rate = r,
                _ => {
                    eprintln!("--fault-rate needs a probability in [0, 1], got `{r}`");
                    return ExitCode::FAILURE;
                }
            },
            Ok(None) => {}
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        if !args.is_empty() {
            eprintln!("chaos takes no further arguments, got: {args:?}");
            return ExitCode::FAILURE;
        }
        if serve_drill {
            // Process-level recovery drill: SIGKILL a real daemon child
            // mid-campaign, restart it over the same durable queue, and
            // verify a bit-exact settle against an in-process reference.
            let exe = match std::env::current_exe() {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("cannot locate the repro binary: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let dir = std::env::temp_dir()
                .join(format!("subcore-serve-drill-{}-{seed}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let report =
                serve::run_serve_drill(&serve::ServeDrillOptions::headline(exe, dir.clone()));
            let _ = std::fs::remove_dir_all(&dir);
            print!("{}", report.render());
            return if report.ok() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
        // The drill runs against private sessions and a scratch journal —
        // it never touches `<out>` or the global session.
        let report = chaos::run_chaos(&chaos::ChaosOptions::headline(seed, rate));
        print!("{}", report.render());
        return if report.ok() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    if args[0] == "serve" {
        args.remove(0);
        return run_serve_command(args, &out_dir, no_cache);
    }
    if args[0] == "submit" {
        args.remove(0);
        return run_submit_command(args);
    }
    if args[0] == "jobs" {
        args.remove(0);
        return run_jobs_command(args);
    }
    if args[0] == "bench-engine" {
        args.remove(0);
        let check = take_flag(&mut args, "--check");
        let baseline_path = match take_value(&mut args, "--baseline") {
            Ok(p) => p.map(PathBuf::from),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        if !args.is_empty() {
            eprintln!("bench-engine takes no further arguments, got: {args:?}");
            return ExitCode::FAILURE;
        }
        // Direct simulate_app calls — no session, so no telemetry block.
        let report = match engine_bench::run_cases(engine_bench::headline_cases()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench-engine FAILED: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", report.render());
        if check {
            // Gate mode: compare against the committed baseline and leave
            // it untouched, so a passing run can't quietly lower the bar.
            let path = baseline_path.unwrap_or_else(|| out_dir.join("BENCH_engine.json"));
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("bench-engine --check: cannot read baseline {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            let baseline = match Json::parse(&text) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!(
                        "bench-engine --check: baseline {} is not valid JSON: {e}",
                        path.display()
                    );
                    return ExitCode::FAILURE;
                }
            };
            return match report.check_against_baseline(&baseline, BENCH_SPEEDUP_TOLERANCE) {
                Ok(()) => {
                    eprintln!("bench-engine --check: no regression vs {}", path.display());
                    ExitCode::SUCCESS
                }
                Err(v) => {
                    eprintln!("bench-engine --check FAILED vs {}:\n{v}", path.display());
                    ExitCode::FAILURE
                }
            };
        }
        let path = baseline_path.unwrap_or_else(|| out_dir.join("BENCH_engine.json"));
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("failed to create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
        return match std::fs::write(&path, report.to_json().render()) {
            Ok(()) => {
                eprintln!("bench → {}", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }
    if args[0] == "lint" {
        args.remove(0);
        // `--calibrate` simulates through the session; plain lint never
        // touches the simulator, so the cache simply stays cold.
        let session = init_global(SessionOptions {
            disk_cache: (!no_cache).then(|| out_dir.join(".simcache")),
        });
        let code = run_lint_command(args);
        finish_telemetry(session, &out_dir);
        return code;
    }
    if args[0] == "estimate" {
        args.remove(0);
        // `--calibrate` simulates the registry through the session; plain
        // estimates are static and leave the cache cold.
        let session = init_global(SessionOptions {
            disk_cache: (!no_cache).then(|| out_dir.join(".simcache")),
        });
        let code = run_estimate_command(args, &out_dir);
        finish_telemetry(session, &out_dir);
        return code;
    }
    if args[0] == "opt" {
        args.remove(0);
        return run_opt_command(args);
    }
    if args[0] == "tenants" {
        args.remove(0);
        let session = init_global(SessionOptions {
            disk_cache: (!no_cache).then(|| out_dir.join(".simcache")),
        });
        journal::set_root(out_dir.join(".journal"));
        subcore_metrics::set_enabled(true);
        let flusher = match subcore_metrics::spawn_periodic(
            out_dir.join(".metrics"),
            "tenants",
            Duration::from_millis(500),
        ) {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!("metrics stream disabled: {e}");
                None
            }
        };
        let code = run_tenants_command(args, &out_dir, bars);
        if let Some(f) = flusher {
            match f.finish() {
                Ok(path) => eprintln!("metrics → {}", path.display()),
                Err(e) => eprintln!("failed to flush metrics stream: {e}"),
            }
        }
        finish_telemetry(session, &out_dir);
        return code;
    }
    if args[0] == "trace" || args[0] == "trace-diff" {
        let cmd = args.remove(0);
        let session = init_global(SessionOptions {
            disk_cache: (!no_cache).then(|| out_dir.join(".simcache")),
        });
        let code = run_trace_command(&cmd, args, &out_dir);
        finish_telemetry(session, &out_dir);
        return code;
    }
    let session =
        init_global(SessionOptions { disk_cache: (!no_cache).then(|| out_dir.join(".simcache")) });
    // Sweeps journal their cells under `<out>/.journal/` so an interrupted
    // campaign is resumable; `--resume` (handled above) replays them.
    journal::set_root(out_dir.join(".journal"));
    let selected: Vec<&str> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    // Live observability: stream periodic metrics snapshots under
    // `<out>/.metrics/` so `repro top` / `repro metrics` can watch the
    // campaign from another terminal.
    subcore_metrics::set_enabled(true);
    let stream: String =
        if selected.len() == 1 { selected[0].to_owned() } else { "campaign".to_owned() };
    let flusher = match subcore_metrics::spawn_periodic(
        out_dir.join(".metrics"),
        &stream,
        Duration::from_millis(500),
    ) {
        Ok(f) => Some(f),
        Err(e) => {
            eprintln!("metrics stream disabled: {e}");
            None
        }
    };
    for name in &selected {
        let start = Instant::now();
        let Some(tables) = run_one(name) else {
            eprintln!("unknown experiment `{name}`; known: {}", EXPERIMENTS.join(" "));
            return ExitCode::FAILURE;
        };
        for table in &tables {
            println!("{}", table.render());
            if bars && !table.columns.is_empty() {
                println!("{}", table.render_bars(0));
            }
            if let Err(e) = table.save_csv(&out_dir) {
                eprintln!("failed to write {}: {e}", out_dir.display());
                return ExitCode::FAILURE;
            }
        }
        eprintln!("[{name}] done in {:.1}s → {}", start.elapsed().as_secs_f64(), out_dir.display());
    }
    if let Some(f) = flusher {
        match f.finish() {
            Ok(path) => eprintln!("metrics → {}", path.display()),
            Err(e) => eprintln!("failed to flush metrics stream: {e}"),
        }
    }
    finish_telemetry(session, &out_dir);
    // Partial results exit zero by default — failed cells are already
    // surfaced as gaps, annotations, and telemetry. The exit code only
    // turns nonzero when the user asked for a failure budget.
    let failed = session.telemetry().snapshot().failed;
    if (fail_fast && failed > 0) || max_failures.is_some_and(|cap| failed > cap) {
        eprintln!("failing exit: {failed} failed jobs exceed the requested budget");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Implements `repro tenants`: the multi-tenant spatial-partitioning
/// sweep over the registered tenant mixes (or a `--mix` selection).
fn run_tenants_command(mut args: Vec<String>, out_dir: &Path, bars: bool) -> ExitCode {
    let mut selected: Vec<String> = Vec::new();
    while let Some(i) = args.iter().position(|a| a == "--mix") {
        if i + 1 >= args.len() {
            eprintln!("--mix needs a tenant-mix name");
            return ExitCode::FAILURE;
        }
        selected.push(args.remove(i + 1));
        args.remove(i);
    }
    if !args.is_empty() {
        eprintln!("tenants takes only --mix NAME arguments, got: {args:?}");
        return ExitCode::FAILURE;
    }
    let mixes: Vec<subcore_workloads::TenantMix> = if selected.is_empty() {
        subcore_workloads::tenant_mixes()
    } else {
        let mut mixes = Vec::new();
        for name in &selected {
            let Some(mix) = subcore_workloads::tenant_mix_by_name(name) else {
                let known: Vec<&str> =
                    subcore_workloads::tenant_mixes().iter().map(|m| m.name).collect();
                eprintln!("unknown tenant mix `{name}`; known: {}", known.join(" "));
                return ExitCode::FAILURE;
            };
            mixes.push(mix);
        }
        mixes
    };

    let start = Instant::now();
    let base = suite_base();
    let outcome = subcore_experiments::run_tenant_sweep(&base, &mixes);
    for mix in &outcome.mixes {
        println!("{}", mix.table.render());
        if bars && !mix.table.columns.is_empty() {
            println!("{}", mix.table.render_bars(0));
        }
        if let Err(e) = mix.table.save_csv(out_dir) {
            eprintln!("failed to write {}: {e}", out_dir.display());
            return ExitCode::FAILURE;
        }
        let wins = mix.contention_aware_wins();
        if wins.is_empty() {
            println!("[{}] contention-aware placement never beat rigid", mix.name);
        } else {
            let labels: Vec<String> = wins.iter().map(|d| d.label()).collect();
            println!(
                "[{}] contention-aware beats rigid (geomean slowdown) under: {}",
                mix.name,
                labels.join(" ")
            );
        }
    }
    if !outcome.deadlines.rows.is_empty() {
        println!("{}", outcome.deadlines.render());
        if let Err(e) = outcome.deadlines.save_csv(out_dir) {
            eprintln!("failed to write {}: {e}", out_dir.display());
            return ExitCode::FAILURE;
        }
    }
    if outcome.journal_skips > 0 {
        eprintln!("[tenants] {} cell(s) resumed from the journal", outcome.journal_skips);
    }
    for e in &outcome.failures {
        eprintln!("[tenants] failed cell: {e}");
    }
    eprintln!("[tenants] done in {:.1}s → {}", start.elapsed().as_secs_f64(), out_dir.display());
    if !outcome.failures.is_empty() && outcome.failures.len() as u64 >= total_cells(&mixes) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Number of cells the tenant sweep schedules for `mixes`.
fn total_cells(mixes: &[subcore_workloads::TenantMix]) -> u64 {
    (mixes.len()
        * subcore_experiments::tenant_designs().len()
        * subcore_sched::PARTITION_POLICIES.len()) as u64
}

/// Parses `--flag VALUE` into `T` for the serve-family commands,
/// reporting missing or unparsable values.
fn cli_parse<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
    what: &str,
) -> Result<Option<T>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else { return Ok(None) };
    if i + 1 >= args.len() {
        return Err(format!("{flag} needs {what}"));
    }
    let v = args.remove(i + 1);
    args.remove(i);
    v.parse::<T>().map(Some).map_err(|_| format!("{flag} needs {what}, got `{v}`"))
}

/// Removes `--flag` from `args`, reporting whether it was present.
fn cli_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

/// Resolves the daemon address for `repro submit` / `repro jobs`: an
/// explicit `--addr`, or an `--addr-file` polled briefly (the daemon may
/// still be starting and writes the file atomically once bound).
fn resolve_addr(addr: Option<String>, addr_file: Option<PathBuf>) -> Result<String, String> {
    if let Some(addr) = addr {
        return Ok(addr);
    }
    let Some(path) = addr_file else {
        return Err("need --addr HOST:PORT or --addr-file PATH".to_owned());
    };
    subcore_serve::read_addr_file(&path, Duration::from_secs(30))
        .ok_or_else(|| format!("no daemon address at {} after 30s", path.display()))
}

/// Implements `repro serve`: the long-running simulation daemon — a
/// durable job queue with lease-based ownership, bounded admission, and
/// cross-client coalescing over the `subcore-serve` HTTP front.
fn run_serve_command(mut args: Vec<String>, out_dir: &Path, no_cache: bool) -> ExitCode {
    let mut opts = ServeOptions { dir: out_dir.join(".serve"), ..ServeOptions::default() };
    let parsed = (|| -> Result<(u16, Option<PathBuf>), String> {
        if let Some(dir) = cli_parse::<PathBuf>(&mut args, "--dir", "a queue directory")? {
            opts.dir = dir;
        }
        if let Some(cap) = cli_parse::<usize>(&mut args, "--capacity", "a queue-depth cap")? {
            opts.capacity = cap.max(1);
        }
        if let Some(w) = cli_parse::<usize>(&mut args, "--serve-workers", "a worker count")? {
            opts.workers = w.max(1);
        }
        if let Some(ms) = cli_parse::<u64>(&mut args, "--lease-ms", "a lease duration in ms")? {
            opts.lease = Duration::from_millis(ms.max(1));
        }
        if let Some(n) = cli_parse::<u32>(&mut args, "--max-attempts", "an attempt cap")? {
            opts.max_attempts = n.max(1);
        }
        let port = cli_parse::<u16>(&mut args, "--port", "a TCP port")?.unwrap_or(0);
        let addr_file = cli_parse::<PathBuf>(&mut args, "--addr-file", "a path")?;
        Ok((port, addr_file))
    })();
    let (port, addr_file) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if !args.is_empty() {
        eprintln!("serve takes no further arguments, got: {args:?}");
        return ExitCode::FAILURE;
    }
    subcore_metrics::set_enabled(true);
    let flusher = match subcore_metrics::spawn_periodic(
        out_dir.join(".metrics"),
        "serve",
        Duration::from_millis(500),
    ) {
        Ok(f) => Some(f),
        Err(e) => {
            eprintln!("metrics stream disabled: {e}");
            None
        }
    };
    // The daemon's executor owns a private session: results memoize
    // in-process and (unless --no-cache) on disk, shared across restarts.
    let exec = std::sync::Arc::new(serve::SimExecutor::new(SessionOptions {
        disk_cache: (!no_cache).then(|| out_dir.join(".simcache")),
    }));
    let server = Server::open(opts, exec);
    let recovery = server.recovery().clone();
    let listener = match std::net::TcpListener::bind(("127.0.0.1", port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("serve: cannot bind 127.0.0.1:{port}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = match listener.local_addr() {
        Ok(a) => a.to_string(),
        Err(e) => {
            eprintln!("serve: no local address: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &addr_file {
        if let Err(e) = subcore_serve::write_addr_file(path, &addr) {
            eprintln!("serve: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "serve: listening on {addr} (queue {}; recovered {} record(s): {} reclaimed, \
         {} replayed, {} skipped)",
        server.options().dir.display(),
        recovery.restored,
        recovery.reclaimed,
        recovery.replayed,
        recovery.skipped
    );
    let code = match subcore_serve::http::run(&server, listener) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    };
    if let Some(f) = flusher {
        match f.finish() {
            Ok(path) => eprintln!("metrics → {}", path.display()),
            Err(e) => eprintln!("failed to flush metrics stream: {e}"),
        }
    }
    eprintln!("serve: drained, exiting");
    code
}

/// Implements `repro submit`: posts one job per app to a running daemon,
/// optionally waiting for settlement.
/// Flags accepted by `repro submit`, parsed ahead of the app-name operands.
struct SubmitFlags {
    addr: Option<String>,
    addr_file: Option<PathBuf>,
    design: String,
    sms: u32,
    max_cycles: u64,
    timeout: u64,
}

fn run_submit_command(mut args: Vec<String>) -> ExitCode {
    let wait = cli_flag(&mut args, "--wait");
    let parsed = (|| -> Result<SubmitFlags, String> {
        let addr = cli_parse::<String>(&mut args, "--addr", "HOST:PORT")?;
        let addr_file = cli_parse::<PathBuf>(&mut args, "--addr-file", "a path")?;
        let design = cli_parse::<String>(&mut args, "--design", "a design label")?
            .unwrap_or_else(|| "baseline".to_owned());
        let defaults = JobSpec::default();
        let sms = cli_parse::<u32>(&mut args, "--sms", "an SM count")?.unwrap_or(defaults.sms);
        let max_cycles = cli_parse::<u64>(&mut args, "--max-cycles", "a cycle cap")?
            .unwrap_or(defaults.max_cycles);
        let timeout = cli_parse::<u64>(&mut args, "--timeout", "seconds")?.unwrap_or(900);
        Ok(SubmitFlags { addr, addr_file, design, sms, max_cycles, timeout })
    })();
    let SubmitFlags { addr, addr_file, design, sms, max_cycles, timeout } = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if args.is_empty() || args.iter().any(|a| a.starts_with("--")) {
        eprintln!("submit needs app names (and only app names) after the flags, got: {args:?}");
        return ExitCode::FAILURE;
    }
    let addr = match resolve_addr(addr, addr_file) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut code = ExitCode::SUCCESS;
    let mut accepted: Vec<(u64, String)> = Vec::new();
    for app in args {
        let spec = JobSpec { app: app.clone(), design: design.clone(), sms, max_cycles };
        let label = format!("{app}/{design}");
        match subcore_serve::http_call(&addr, "POST", "/submit", Some(&spec.to_json().render())) {
            Ok((200, body)) => {
                let fields = Json::parse(&body).ok().map(|j| {
                    let u = |n: &str| j.field(n).ok().and_then(|v| v.as_u64().ok()).unwrap_or(0);
                    let coalesced =
                        j.field("coalesced").ok().and_then(|v| v.as_bool().ok()).unwrap_or(false);
                    (u("id"), u("key"), u("predicted_cycles"), u("budget_ms"), coalesced)
                });
                let Some((id, key, predicted, budget_ms, coalesced)) = fields else {
                    eprintln!("unparsable submit response for {label}: {body}");
                    code = ExitCode::FAILURE;
                    continue;
                };
                println!(
                    "job {id}: {label} accepted (key {key:016x}, predicted {predicted} cycles, \
                     budget {budget_ms} ms){}",
                    if coalesced { " — coalesced with an in-flight duplicate" } else { "" }
                );
                accepted.push((id, label));
            }
            Ok((429, body)) => {
                eprintln!("{label} shed by the daemon (queue full): {body}");
                code = ExitCode::FAILURE;
            }
            Ok((status, body)) => {
                eprintln!("{label} rejected ({status}): {body}");
                code = ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("submit of {label} failed: {e}");
                code = ExitCode::FAILURE;
            }
        }
    }
    if !wait {
        return code;
    }
    let deadline = Instant::now() + Duration::from_secs(timeout);
    for (id, label) in accepted {
        loop {
            let record = subcore_serve::http_call(&addr, "GET", &format!("/jobs/{id}"), None)
                .ok()
                .filter(|(status, _)| *status == 200)
                .and_then(|(_, body)| Json::parse(&body).ok());
            let state = record
                .as_ref()
                .and_then(|r| r.field("state").ok())
                .and_then(|s| s.as_str().ok().map(str::to_owned));
            match state.as_deref() {
                Some("done") => {
                    let cycles = record
                        .as_ref()
                        .and_then(|r| r.field("stats").ok())
                        .and_then(|s| s.field("cycles").ok())
                        .and_then(|c| c.as_u64().ok())
                        .unwrap_or(0);
                    println!("job {id}: {label} done ({cycles} cycles)");
                    break;
                }
                Some("failed") => {
                    let error = record
                        .as_ref()
                        .and_then(|r| r.field("error").ok())
                        .map(Json::render)
                        .unwrap_or_default();
                    eprintln!("job {id}: {label} failed: {error}");
                    code = ExitCode::FAILURE;
                    break;
                }
                _ => {}
            }
            if Instant::now() >= deadline {
                eprintln!("job {id}: {label} still unsettled after {timeout}s");
                return ExitCode::FAILURE;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    }
    code
}

/// Implements `repro jobs`: queue listing plus the `--healthz`,
/// `--metrics`, and `--drain` probes against a running daemon.
fn run_jobs_command(mut args: Vec<String>) -> ExitCode {
    let drain = cli_flag(&mut args, "--drain");
    let healthz = cli_flag(&mut args, "--healthz");
    let metrics = cli_flag(&mut args, "--metrics");
    let parsed = (|| -> Result<(Option<String>, Option<PathBuf>), String> {
        let addr = cli_parse::<String>(&mut args, "--addr", "HOST:PORT")?;
        let addr_file = cli_parse::<PathBuf>(&mut args, "--addr-file", "a path")?;
        Ok((addr, addr_file))
    })();
    let (addr, addr_file) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if !args.is_empty() {
        eprintln!("jobs takes no further arguments, got: {args:?}");
        return ExitCode::FAILURE;
    }
    let addr = match resolve_addr(addr, addr_file) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let call = |method: &str, path: &str| match subcore_serve::http_call(&addr, method, path, None)
    {
        Ok((200, body)) => Some(body),
        Ok((status, body)) => {
            eprintln!("{method} {path} → {status}: {body}");
            None
        }
        Err(e) => {
            eprintln!("{method} {path} failed: {e}");
            None
        }
    };
    if drain {
        return match call("POST", "/drain") {
            Some(body) => {
                println!("drain requested: {body}");
                ExitCode::SUCCESS
            }
            None => ExitCode::FAILURE,
        };
    }
    if healthz {
        return match call("GET", "/healthz") {
            Some(body) => {
                println!("{body}");
                ExitCode::SUCCESS
            }
            None => ExitCode::FAILURE,
        };
    }
    if metrics {
        let Some(text) = call("GET", "/metrics") else { return ExitCode::FAILURE };
        return match subcore_metrics::validate_prometheus(&text) {
            Ok(samples) => {
                print!("{text}");
                eprintln!("# {samples} samples from {addr}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("daemon /metrics failed validation: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let Some(body) = call("GET", "/jobs") else { return ExitCode::FAILURE };
    let jobs = Json::parse(&body)
        .ok()
        .and_then(|j| j.field("jobs").ok().map(|a| a.as_arr().map(<[Json]>::to_vec)));
    let Some(Ok(jobs)) = jobs else {
        eprintln!("unparsable /jobs response: {body}");
        return ExitCode::FAILURE;
    };
    if jobs.is_empty() {
        println!("no jobs");
        return ExitCode::SUCCESS;
    }
    for job in &jobs {
        let u = |n: &str| job.field(n).ok().and_then(|v| v.as_u64().ok()).unwrap_or(0);
        let s = |n: &str| {
            job.field(n).ok().and_then(|v| v.as_str().ok().map(str::to_owned)).unwrap_or_default()
        };
        let cycles = job
            .field("cycles")
            .ok()
            .and_then(|c| c.as_u64().ok())
            .map_or_else(|| "-".to_owned(), |c| c.to_string());
        let error = job
            .field("error")
            .ok()
            .filter(|e| !matches!(e, Json::Null))
            .map(|e| format!("  {}", e.render()))
            .unwrap_or_default();
        println!(
            "#{:<5} {:<7} {:<24} attempts={} predicted={} budget={}ms cycles={}{}",
            u("id"),
            s("state"),
            format!("{}/{}", s("app"), s("design")),
            u("attempts"),
            u("predicted_cycles"),
            u("budget_ms"),
            cycles,
            error
        );
    }
    ExitCode::SUCCESS
}

/// Parses the shared `--interval MS` / `--frames N` watch knobs of
/// `repro top` and `repro status --watch`. `--frames` defaults to
/// unbounded (loop until interrupted).
fn take_watch_knobs(
    args: &mut Vec<String>,
    default_interval_ms: u64,
) -> Result<(Duration, u64), String> {
    let take_value = |args: &mut Vec<String>, flag: &str| -> Result<Option<String>, String> {
        let Some(i) = args.iter().position(|a| a == flag) else { return Ok(None) };
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs an argument"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    };
    let interval_ms = match take_value(args, "--interval")? {
        Some(v) => match v.parse::<u64>() {
            Ok(ms) if ms > 0 => ms,
            _ => return Err(format!("--interval needs positive milliseconds, got `{v}`")),
        },
        None => default_interval_ms,
    };
    let frames = match take_value(args, "--frames")? {
        Some(v) => match v.parse::<u64>() {
            Ok(n) if n > 0 => n,
            _ => return Err(format!("--frames needs a positive frame count, got `{v}`")),
        },
        None => u64::MAX,
    };
    Ok((Duration::from_millis(interval_ms), frames))
}

/// Prints the session telemetry summary and writes the per-run CSV.
fn finish_telemetry(session: &SimSession, out_dir: &Path) {
    eprint!("{}", session.telemetry().snapshot().summary());
    let telemetry_csv = out_dir.join("run_telemetry.csv");
    match session.telemetry().write_csv(&telemetry_csv) {
        Ok(()) => eprintln!("telemetry → {}", telemetry_csv.display()),
        Err(e) => eprintln!("failed to write {}: {e}", telemetry_csv.display()),
    }
}

/// Implements `repro lint` (and `repro lint --calibrate`).
fn run_lint_command(mut args: Vec<String>) -> ExitCode {
    let take_flag = |args: &mut Vec<String>, flag: &str| -> bool {
        if let Some(i) = args.iter().position(|a| a == flag) {
            args.remove(i);
            true
        } else {
            false
        }
    };
    let take_value = |args: &mut Vec<String>, flag: &str| -> Result<Option<String>, String> {
        let Some(i) = args.iter().position(|a| a == flag) else { return Ok(None) };
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs an argument"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    };
    let all = take_flag(&mut args, "--all");
    let json = take_flag(&mut args, "--json");
    let deny_warnings = take_flag(&mut args, "--deny-warnings");
    let calibrate = take_flag(&mut args, "--calibrate");
    let mut design = Design::Baseline;
    match take_value(&mut args, "--design") {
        Ok(Some(label)) => match trace::parse_design(&label) {
            Some(d) => design = d,
            None => {
                eprintln!("unknown design `{label}`");
                return ExitCode::FAILURE;
            }
        },
        Ok(None) => {}
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    let mut window: u32 = 2048;
    match take_value(&mut args, "--window") {
        Ok(Some(w)) => match w.parse::<u32>() {
            Ok(w) if w > 0 => window = w,
            _ => {
                eprintln!("--window needs a positive cycle count, got `{w}`");
                return ExitCode::FAILURE;
            }
        },
        Ok(None) => {}
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }

    if calibrate {
        let names: Vec<&str> = if args.is_empty() {
            lint::CALIBRATION_APPS.to_vec()
        } else {
            args.iter().map(String::as_str).collect()
        };
        for name in &names {
            if trace::resolve_target(name).is_none() {
                eprintln!("unknown calibration app `{name}`");
                return ExitCode::FAILURE;
            }
        }
        let report = lint::calibrate(&names, window);
        if json {
            println!("{}", report.to_json().render());
        } else {
            print!("{}", report.render());
        }
        return ExitCode::SUCCESS;
    }

    let apps: Vec<subcore_isa::App> = if all {
        if !args.is_empty() {
            eprintln!("--all lints the whole registry; drop the app arguments: {args:?}");
            return ExitCode::FAILURE;
        }
        subcore_workloads::all_apps()
    } else {
        if args.is_empty() {
            eprintln!("usage: repro lint <app>... | --all [--design D] [--json] [--deny-warnings]");
            return ExitCode::FAILURE;
        }
        let mut apps = Vec::new();
        for name in &args {
            let Some(app) = trace::resolve_target(name) else {
                eprintln!(
                    "unknown lint target `{name}` (use a registry app name, `fma`, `fig3`, or `fig8`)"
                );
                return ExitCode::FAILURE;
            };
            apps.push(app);
        }
        apps
    };

    let mut totals = lint::LintTotals::default();
    let mut reports_json = Vec::new();
    for app in &apps {
        let report = lint::lint_app(design, app);
        totals.add(&report);
        if json {
            reports_json.push(report.to_json());
        } else {
            // In registry-wide mode, skip apps with nothing above info
            // level and keep info findings out of the way.
            let show_info = !all;
            let body = report.render(show_info);
            if !body.is_empty() || !all {
                println!(
                    "== {} (design {}): {} errors, {} warnings, {} allowed, {} info",
                    report.app,
                    report.design,
                    report.errors(),
                    report.unallowed_warnings(),
                    report.allowed(),
                    report.infos()
                );
                print!("{body}");
            }
        }
    }
    // Registry-wide runs also gate the tenant-mix partitions (L040–L042):
    // allocator output for every registered mix under both policies.
    let mut tenant_findings = 0usize;
    if all {
        for (label, diags) in lint::lint_tenant_mixes() {
            for d in &diags {
                match d.severity {
                    subcore_lint::Severity::Error => totals.errors += 1,
                    subcore_lint::Severity::Warning => totals.warnings += 1,
                    subcore_lint::Severity::Info => totals.infos += 1,
                }
                tenant_findings += 1;
            }
            if json {
                reports_json.push(Json::obj([
                    ("tenant_mix", Json::Str(label.clone())),
                    (
                        "diagnostics",
                        Json::Arr(diags.iter().map(|d| Json::Str(d.render())).collect()),
                    ),
                ]));
            } else {
                println!("== tenant mix {label}");
                for d in &diags {
                    println!("{}", d.render());
                }
            }
        }
    }
    if json {
        println!("{}", Json::Arr(reports_json).render());
    } else {
        let verdict = if totals.passes(deny_warnings) { "PASS" } else { "FAIL" };
        if all {
            println!(
                "tenant mixes: {} findings across {} mixes x {} policies",
                tenant_findings,
                subcore_workloads::tenant_mixes().len(),
                subcore_sched::PARTITION_POLICIES.len()
            );
        }
        println!("lint {}: {}", verdict, totals.render());
    }
    if totals.passes(deny_warnings) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Resolves positional app arguments (or `--all` → the whole registry)
/// the way `lint`/`estimate`/`opt` share: registry names plus the `fma`/
/// `fig3`/`fig8` synthetic targets.
fn resolve_apps(all: bool, args: &[String], usage: &str) -> Result<Vec<subcore_isa::App>, String> {
    if all {
        if !args.is_empty() {
            return Err(format!(
                "--all covers the whole registry; drop the app arguments: {args:?}"
            ));
        }
        return Ok(subcore_workloads::all_apps());
    }
    if args.is_empty() {
        return Err(usage.to_owned());
    }
    let mut apps = Vec::new();
    for name in args {
        let Some(app) = trace::resolve_target(name) else {
            return Err(format!(
                "unknown target `{name}` (use a registry app name, `fma`, `fig3`, or `fig8`)"
            ));
        };
        apps.push(app);
    }
    Ok(apps)
}

/// Implements `repro estimate` (and `repro estimate --calibrate`).
fn run_estimate_command(mut args: Vec<String>, out_dir: &Path) -> ExitCode {
    let take_flag = |args: &mut Vec<String>, flag: &str| -> bool {
        if let Some(i) = args.iter().position(|a| a == flag) {
            args.remove(i);
            true
        } else {
            false
        }
    };
    let take_value = |args: &mut Vec<String>, flag: &str| -> Result<Option<String>, String> {
        let Some(i) = args.iter().position(|a| a == flag) else { return Ok(None) };
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs an argument"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    };
    let all = take_flag(&mut args, "--all");
    let json = take_flag(&mut args, "--json");
    let calibrate = take_flag(&mut args, "--calibrate");
    let mut design = Design::Baseline;
    match take_value(&mut args, "--design") {
        Ok(Some(label)) => match trace::parse_design(&label) {
            Some(d) => design = d,
            None => {
                eprintln!("unknown design `{label}`");
                return ExitCode::FAILURE;
            }
        },
        Ok(None) => {}
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }

    if calibrate {
        if !args.is_empty() {
            eprintln!("estimate --calibrate sweeps the whole registry; got: {args:?}");
            return ExitCode::FAILURE;
        }
        let report = estimate::calibrate(subcore_experiments::session());
        let artifact = out_dir.join("estimate_calibration.json");
        if let Some(dir) = artifact.parent() {
            std::fs::create_dir_all(dir).ok();
        }
        match std::fs::write(&artifact, report.to_json().render()) {
            Ok(()) => eprintln!("calibration → {}", artifact.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", artifact.display());
                return ExitCode::FAILURE;
            }
        }
        if json {
            println!("{}", report.to_json().render());
        } else {
            print!("{}", report.render());
        }
        return if report.passes() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    let apps = match resolve_apps(
        all,
        &args,
        "usage: repro estimate <app>... | --all | --calibrate [--design D] [--json]",
    ) {
        Ok(apps) => apps,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut reports_json = Vec::new();
    for app in &apps {
        let e = subcore_opt::estimate_app(app, &lint::base_for(app), design);
        if json {
            reports_json.push(estimate::estimate_to_json(&e));
        } else {
            print!("{}", estimate::render_estimate(&e));
        }
    }
    if json {
        println!("{}", Json::Arr(reports_json).render());
    }
    ExitCode::SUCCESS
}

/// Implements `repro opt`: the conflict-free register remapper's
/// per-kernel evidence (the fix `lint`'s L036 advisory names).
fn run_opt_command(mut args: Vec<String>) -> ExitCode {
    let all = if let Some(i) = args.iter().position(|a| a == "--all") {
        args.remove(i);
        true
    } else {
        false
    };
    let apps = match resolve_apps(all, &args, "usage: repro opt <app>... | --all") {
        Ok(apps) => apps,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    for app in &apps {
        print!("{}", estimate::render_remap(app));
    }
    ExitCode::SUCCESS
}

/// Implements `repro trace` and `repro trace-diff`.
fn run_trace_command(cmd: &str, mut args: Vec<String>, out_dir: &Path) -> ExitCode {
    let mut window: u32 = 1024;
    let mut events: Option<u64> = None;
    let mut designs: Vec<String> = Vec::new();
    let take_value = |args: &mut Vec<String>, flag: &str| -> Result<Option<String>, String> {
        let Some(i) = args.iter().position(|a| a == flag) else { return Ok(None) };
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs an argument"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    };
    loop {
        match take_value(&mut args, "--design") {
            Ok(Some(d)) => designs.push(d),
            Ok(None) => break,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match take_value(&mut args, "--window") {
        Ok(Some(w)) => match w.parse::<u32>() {
            Ok(w) if w > 0 => window = w,
            _ => {
                eprintln!("--window needs a positive cycle count, got `{w}`");
                return ExitCode::FAILURE;
            }
        },
        Ok(None) => {}
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    match take_value(&mut args, "--events") {
        Ok(Some(n)) => match n.parse::<u64>() {
            Ok(n) => events = Some(n),
            Err(_) => {
                eprintln!("--events needs an event count, got `{n}`");
                return ExitCode::FAILURE;
            }
        },
        Ok(None) => {}
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    let [target] = args.as_slice() else {
        eprintln!("usage: repro {cmd} <fig|app> [--design D]... [--window N] [--events LIMIT]");
        return ExitCode::FAILURE;
    };
    let Some(app) = trace::resolve_target(target) else {
        eprintln!(
            "unknown trace target `{target}` (use a registry app name, `fma`, `fig3`, or `fig8`)"
        );
        return ExitCode::FAILURE;
    };
    if designs.is_empty() {
        designs = match cmd {
            "trace-diff" => vec!["baseline".into(), "rba".into()],
            _ => vec!["baseline".into()],
        };
    }
    if cmd == "trace-diff" && designs.len() != 2 {
        eprintln!("trace-diff compares exactly two designs, got {}", designs.len());
        return ExitCode::FAILURE;
    }
    let mut parsed = Vec::new();
    for label in &designs {
        match trace::parse_design(label) {
            Some(d) => parsed.push(d),
            None => {
                eprintln!("unknown design `{label}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let base = match app.suite() {
        Suite::TpchUncompressed | Suite::TpchCompressed => tpch_base(),
        _ => suite_base(),
    };
    let traces_dir = out_dir.join("traces");
    let mut artifacts = Vec::new();
    for &design in &parsed {
        let art = trace::capture(&base, design, &app, window);
        print!("{}", art.summary());
        match art.save(&traces_dir) {
            Ok(path) => eprintln!("trace → {}", path.display()),
            Err(e) => {
                eprintln!("failed to write trace artifact: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Some(limit) = events {
            let out = traces_dir.join(format!(
                "{}.{}.w{window}.events.jsonl",
                app.name(),
                design.label()
            ));
            match trace::capture_events(&base, design, &app, window, limit, &out) {
                Ok(n) => eprintln!("{n} events → {}", out.display()),
                Err(e) => {
                    eprintln!("failed to write event trace: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        artifacts.push(art);
    }
    if cmd == "trace-diff" {
        let report = trace::diff_report(&artifacts[0], &artifacts[1]);
        print!("{report}");
        let path = traces_dir.join(format!(
            "{}.{}-vs-{}.w{window}.diff.txt",
            app.name(),
            artifacts[0].design,
            artifacts[1].design
        ));
        match std::fs::write(&path, report) {
            Ok(()) => eprintln!("diff → {}", path.display()),
            Err(e) => {
                eprintln!("failed to write diff report: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
