//! The serve core: bounded admission, cross-client coalescing,
//! lease-based workers with heartbeats, and graceful drain.
//!
//! State machine per job (durable at every arrow — see
//! [`crate::queue`]):
//!
//! ```text
//!   submit ──> Queued ──claim──> Leased ──ok──> Done
//!                 ^                │ │
//!                 │   lease expiry │ └──err──> Failed
//!                 └────(retry)─────┘ (attempts exhausted ──> Failed)
//! ```
//!
//! Coalescing: submissions are keyed by the executor's content
//! fingerprint (the cell's `SimKey`). A key with a live (queued, leased,
//! or done) job absorbs new submissions — N clients, one simulation,
//! identical results. Failure isolation: a failed job answers its
//! waiters with the structured [`ExecError`] *and leaves the coalescing
//! map* — a fresh submit of the same cell starts a clean job instead of
//! replaying the failure forever.
//!
//! Leases: a worker owns a claimed job only while its heartbeat keeps
//! the lease alive. A wedged worker stops heartbeating (it beats only
//! between progress checks, and abandons past the hard budget), the
//! monitor reclaims the job back onto the queue, and a healthy worker
//! retries it — up to `max_attempts`, after which it fails structurally
//! with kind `lease-expired`.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use subcore_engine::RunStats;
use subcore_metrics::names as mx;

use crate::proto::{ExecError, JobRecord, JobSpec, JobState, SubmitOutcome};
use crate::queue::{DurableQueue, RecoveryReport};

/// What the daemon runs for each job. Implementations live above this
/// crate (the `repro` harness injects one wrapping `SimSession` +
/// `supervise_map`); tests inject mocks.
pub trait Executor: Send + Sync + 'static {
    /// Content fingerprint of the cell (`SimKey`), the coalescing key.
    /// Errors reject the request at admission, before anything queues.
    fn fingerprint(&self, spec: &JobSpec) -> Result<u64, ExecError>;

    /// Cost-model predicted cycles for the cell (0 if unknown).
    fn predicted_cycles(&self, spec: &JobSpec) -> u64;

    /// Runs the simulation. Panics are caught by the worker and become
    /// structured `panic` errors.
    fn execute(&self, spec: &JobSpec) -> Result<RunStats, ExecError>;
}

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Durable queue directory.
    pub dir: std::path::PathBuf,
    /// Max admitted-but-unsettled jobs (queued + leased); submissions
    /// beyond it are shed with a structured retry-after.
    pub capacity: usize,
    /// Worker threads.
    pub workers: usize,
    /// Lease duration; a lease not heartbeat-extended within this window
    /// is reclaimed.
    pub lease: Duration,
    /// Lease grants per job before it fails as `lease-expired`.
    pub max_attempts: u32,
    /// Watchdog-budget clamp floor.
    pub budget_floor: Duration,
    /// Watchdog-budget clamp ceiling.
    pub budget_ceiling: Duration,
    /// Assumed simulation rate for deriving budgets and retry-after
    /// hints from predicted cycles.
    pub budget_cycles_per_sec: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            dir: std::path::PathBuf::from("results/.serve"),
            capacity: 64,
            workers: 2,
            lease: Duration::from_secs(10),
            max_attempts: 3,
            budget_floor: Duration::from_secs(120),
            budget_ceiling: Duration::from_secs(900),
            budget_cycles_per_sec: 25_000,
        }
    }
}

struct Lease {
    generation: u64,
    expires: Instant,
}

#[derive(Default)]
struct Core {
    jobs: BTreeMap<u64, JobRecord>,
    ready: VecDeque<u64>,
    by_key: HashMap<u64, u64>,
    leases: HashMap<u64, Lease>,
    next_id: u64,
}

impl Core {
    fn depth(&self) -> usize {
        self.ready.len() + self.leases.len()
    }

    fn note_depth(&self) {
        subcore_metrics::gauge_set(mx::SERVE_QUEUE_DEPTH, self.depth() as f64);
    }

    /// Predicted cycles still outstanding (queued + leased jobs).
    fn backlog_cycles(&self) -> u64 {
        self.ready
            .iter()
            .chain(self.leases.keys())
            .filter_map(|id| self.jobs.get(id))
            .fold(0u64, |acc, r| acc.saturating_add(r.predicted_cycles))
    }
}

struct Inner {
    opts: ServeOptions,
    exec: Arc<dyn Executor>,
    queue: DurableQueue,
    state: Mutex<Core>,
    cv: Condvar,
    draining: AtomicBool,
    stopped: AtomicBool,
    next_gen: AtomicU64,
    workers_alive: AtomicUsize,
    recovery: RecoveryReport,
}

/// Handle to a running (or runnable) serve core. Cheap to clone; all
/// clones share one queue.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

/// A claimed job, owned by one worker under a lease.
struct Claim {
    id: u64,
    generation: u64,
    spec: JobSpec,
    budget: Duration,
}

impl Server {
    /// Opens the durable queue at `opts.dir`, reclaims leases left by a
    /// dead process, and rebuilds the in-memory state. Nothing executes
    /// until [`Server::start_workers`] (or [`crate::http::run`] via the HTTP
    /// front) is called.
    pub fn open(opts: ServeOptions, exec: Arc<dyn Executor>) -> Server {
        let queue = DurableQueue::new(&opts.dir);
        let (records, recovery) = queue.load();
        let mut core = Core::default();
        for rec in records {
            core.next_id = core.next_id.max(rec.id + 1);
            if rec.state == JobState::Queued {
                core.ready.push_back(rec.id);
            }
            // Failed jobs never coalesce (failure isolation): a fresh
            // submit of the same cell must start a clean job.
            if rec.state != JobState::Failed {
                core.by_key.insert(rec.key, rec.id);
            }
            core.jobs.insert(rec.id, rec);
        }
        core.note_depth();
        Server {
            inner: Arc::new(Inner {
                opts,
                exec,
                queue,
                state: Mutex::new(core),
                cv: Condvar::new(),
                draining: AtomicBool::new(false),
                stopped: AtomicBool::new(false),
                next_gen: AtomicU64::new(1),
                workers_alive: AtomicUsize::new(0),
                recovery,
            }),
        }
    }

    /// What the durable-queue load found (restart evidence).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.inner.recovery
    }

    /// The daemon's tuning knobs.
    pub fn options(&self) -> &ServeOptions {
        &self.inner.opts
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Core> {
        self.inner.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn budget_for(&self, predicted_cycles: u64) -> Duration {
        let opts = &self.inner.opts;
        let rate = opts.budget_cycles_per_sec.max(1);
        let ms = predicted_cycles.saturating_mul(1000) / rate;
        let floor = u64::try_from(opts.budget_floor.as_millis()).unwrap_or(u64::MAX);
        let ceiling = u64::try_from(opts.budget_ceiling.as_millis()).unwrap_or(u64::MAX);
        Duration::from_millis(ms.clamp(floor, ceiling.max(floor)))
    }

    /// Bounded admission. Invalid specs error before queuing; a full
    /// (or draining) queue sheds with a structured retry-after derived
    /// from the predicted backlog; otherwise the request is admitted —
    /// coalesced onto a live job with the same fingerprint when one
    /// exists, journaled as a fresh job when not.
    pub fn submit(&self, spec: JobSpec) -> Result<SubmitOutcome, ExecError> {
        let key = self.inner.exec.fingerprint(&spec)?;
        let mut core = self.lock();
        if let Some(&id) = core.by_key.get(&key) {
            let rec = &core.jobs[&id];
            subcore_metrics::inc(mx::SERVE_COALESCED);
            return Ok(SubmitOutcome::Accepted {
                id,
                key,
                coalesced: true,
                predicted_cycles: rec.predicted_cycles,
                budget_ms: rec.budget_ms,
            });
        }
        let draining = self.draining();
        if draining || core.depth() >= self.inner.opts.capacity {
            let rate = self.inner.opts.budget_cycles_per_sec.max(1);
            let backlog_ms = core.backlog_cycles().saturating_mul(1000) / rate;
            subcore_metrics::inc(mx::SERVE_SHED);
            return Ok(SubmitOutcome::Shed {
                retry_after_ms: backlog_ms.clamp(100, 60_000),
                depth: core.depth() as u64,
                capacity: self.inner.opts.capacity as u64,
                reason: if draining { "draining".into() } else { "queue-full".into() },
            });
        }
        let predicted_cycles = self.inner.exec.predicted_cycles(&spec);
        let budget = self.budget_for(predicted_cycles);
        let budget_ms = u64::try_from(budget.as_millis()).unwrap_or(u64::MAX);
        let id = core.next_id;
        core.next_id += 1;
        let rec = JobRecord {
            id,
            spec,
            key,
            predicted_cycles,
            budget_ms,
            state: JobState::Queued,
            attempts: 0,
            stats: None,
            error: None,
        };
        // Durability before visibility: if the record cannot be
        // journaled, the job is not accepted (an accepted-then-lost job
        // would break the no-loss contract).
        if !self.inner.queue.persist(&rec) {
            return Err(ExecError::new("io", "failed to journal the job record"));
        }
        core.by_key.insert(key, id);
        core.jobs.insert(id, rec);
        core.ready.push_back(id);
        core.note_depth();
        subcore_metrics::inc(mx::SERVE_SUBMITTED);
        self.inner.cv.notify_one();
        Ok(SubmitOutcome::Accepted { id, key, coalesced: false, predicted_cycles, budget_ms })
    }

    /// A snapshot of one job.
    pub fn job(&self, id: u64) -> Option<JobRecord> {
        self.lock().jobs.get(&id).cloned()
    }

    /// Snapshots of every job, in id order.
    pub fn jobs(&self) -> Vec<JobRecord> {
        self.lock().jobs.values().cloned().collect()
    }

    /// Jobs admitted but not yet settled (queued + leased).
    pub fn depth(&self) -> usize {
        self.lock().depth()
    }

    /// Stops admission; workers finish or persist what is in flight.
    pub fn drain(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
    }

    /// Whether [`Server::drain`] was requested.
    pub fn draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Whether no job is queued or leased.
    pub fn idle(&self) -> bool {
        self.lock().depth() == 0
    }

    /// Whether a requested drain has finished: the queue is empty, or
    /// every worker has exited and nothing is leased — any still-queued
    /// jobs are persisted for the next daemon start ("finish *or
    /// persist* in-flight work").
    pub fn drain_complete(&self) -> bool {
        if !self.draining() {
            return false;
        }
        let core = self.lock();
        core.depth() == 0
            || (core.leases.is_empty() && self.inner.workers_alive.load(Ordering::SeqCst) == 0)
    }

    /// Test/CLI helper: blocks until `id` settles (or `timeout` passes),
    /// returning the settled record.
    pub fn wait_settled(&self, id: u64, timeout: Duration) -> Option<JobRecord> {
        let deadline = Instant::now() + timeout;
        let mut core = self.lock();
        loop {
            match core.jobs.get(&id) {
                Some(rec) if rec.state.terminal() => return Some(rec.clone()),
                None => return None,
                _ => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .inner
                .cv
                .wait_timeout(core, (deadline - now).min(Duration::from_millis(50)))
                .unwrap_or_else(|p| p.into_inner());
            core = guard;
        }
    }

    /// Spawns the worker pool and the lease monitor. Threads exit after
    /// [`Server::drain`] once the queue is empty; join them via the
    /// returned handles (see [`crate::http::run`] for the full daemon
    /// loop).
    pub fn start_workers(&self) -> Vec<std::thread::JoinHandle<()>> {
        let mut handles = Vec::new();
        for w in 0..self.inner.opts.workers.max(1) {
            let server = self.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || server.worker_loop())
                    .expect("spawn worker"),
            );
        }
        let server = self.clone();
        handles.push(
            std::thread::Builder::new()
                .name("serve-lease-monitor".into())
                .spawn(move || server.monitor_loop())
                .expect("spawn monitor"),
        );
        handles
    }

    /// Marks the daemon stopped (lets the lease monitor exit). Called by
    /// the run loop after the workers drained.
    pub(crate) fn stop(&self) {
        self.inner.stopped.store(true, Ordering::SeqCst);
    }

    fn worker_loop(&self) {
        self.inner.workers_alive.fetch_add(1, Ordering::SeqCst);
        while let Some(claim) = self.claim() {
            // `None` means the executor outlived its hard budget and was
            // abandoned: stop heartbeating and let the lease lapse — the
            // monitor reclaims or fails the job, and whatever the stray
            // executor thread eventually produces is discarded by the
            // generation check.
            if let Some(result) = self.execute_claim(&claim) {
                self.settle(&claim, result);
            }
        }
        self.inner.workers_alive.fetch_sub(1, Ordering::SeqCst);
    }

    /// Claims the next queued job under a fresh lease, blocking until
    /// one is available or the daemon is draining with an empty queue.
    fn claim(&self) -> Option<Claim> {
        let mut core = self.lock();
        loop {
            if let Some(id) = core.ready.pop_front() {
                let generation = self.inner.next_gen.fetch_add(1, Ordering::Relaxed);
                let rec = core.jobs.get_mut(&id).expect("ready ids are live jobs");
                rec.state = JobState::Leased;
                rec.attempts += 1;
                let claim = Claim {
                    id,
                    generation,
                    spec: rec.spec.clone(),
                    budget: Duration::from_millis(rec.budget_ms),
                };
                let expires = Instant::now() + self.inner.opts.lease;
                let rec = rec.clone();
                core.leases.insert(id, Lease { generation, expires });
                core.note_depth();
                drop(core);
                self.inner.queue.persist(&rec);
                return Some(claim);
            }
            if self.draining() {
                return None;
            }
            let (guard, _) = self
                .inner
                .cv
                .wait_timeout(core, Duration::from_millis(100))
                .unwrap_or_else(|p| p.into_inner());
            core = guard;
        }
    }

    /// Runs the executor on its own thread, heartbeating the lease while
    /// waiting. Returns `None` if the executor outlived the hard budget
    /// (budget + one lease of grace) and was abandoned.
    fn execute_claim(&self, claim: &Claim) -> Option<Result<RunStats, ExecError>> {
        let (tx, rx) = mpsc::channel();
        let exec = Arc::clone(&self.inner.exec);
        let spec = claim.spec.clone();
        let spawned =
            std::thread::Builder::new().name(format!("serve-exec-{}", claim.id)).spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| exec.execute(&spec)));
                let _ = tx.send(result);
            });
        if spawned.is_err() {
            return Some(Err(ExecError::new("io", "failed to spawn the executor thread")));
        }
        let heartbeat = (self.inner.opts.lease / 4).max(Duration::from_millis(10));
        let hard_deadline = Instant::now() + claim.budget + self.inner.opts.lease;
        loop {
            match rx.recv_timeout(heartbeat) {
                Ok(Ok(result)) => return Some(result),
                Ok(Err(payload)) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "opaque panic payload".into());
                    return Some(Err(ExecError::new("panic", msg)));
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if Instant::now() >= hard_deadline {
                        return None;
                    }
                    self.heartbeat(claim);
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Some(Err(ExecError::new("panic", "executor thread vanished")));
                }
            }
        }
    }

    /// Extends the claim's lease, if this worker still owns it.
    fn heartbeat(&self, claim: &Claim) {
        let mut core = self.lock();
        if let Some(lease) = core.leases.get_mut(&claim.id) {
            if lease.generation == claim.generation {
                lease.expires = Instant::now() + self.inner.opts.lease;
            }
        }
    }

    /// Settles a claimed job — unless the lease was reclaimed while the
    /// worker ran (generation mismatch), in which case the stale result
    /// is discarded and the reclaimed copy's outcome stands.
    fn settle(&self, claim: &Claim, result: Result<RunStats, ExecError>) {
        let mut core = self.lock();
        let owns =
            core.leases.get(&claim.id).is_some_and(|lease| lease.generation == claim.generation);
        if !owns {
            return;
        }
        core.leases.remove(&claim.id);
        let rec = core.jobs.get_mut(&claim.id).expect("leased ids are live jobs");
        match result {
            Ok(stats) => {
                rec.state = JobState::Done;
                rec.stats = Some(Box::new(stats));
                subcore_metrics::inc(mx::SERVE_JOB_DONE);
            }
            Err(e) => {
                rec.state = JobState::Failed;
                rec.error = Some(e);
                subcore_metrics::inc(mx::SERVE_JOB_FAILED);
            }
        }
        let rec = rec.clone();
        if rec.state == JobState::Failed {
            core.by_key.remove(&rec.key);
        }
        core.note_depth();
        drop(core);
        self.inner.queue.persist(&rec);
        self.inner.cv.notify_all();
    }

    /// Lease monitor: reclaims expired leases back onto the queue (or
    /// fails the job once its attempts are exhausted).
    fn monitor_loop(&self) {
        let tick = (self.inner.opts.lease / 4).max(Duration::from_millis(10));
        while !self.inner.stopped.load(Ordering::SeqCst) {
            // A draining daemon whose workers have all exited has nothing
            // left to reclaim — let the monitor die with them so plain
            // drain-and-join callers (no HTTP loop) terminate too.
            if self.draining() && self.inner.workers_alive.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(tick);
            let now = Instant::now();
            let mut core = self.lock();
            let expired: Vec<u64> = core
                .leases
                .iter()
                .filter(|(_, lease)| lease.expires <= now)
                .map(|(&id, _)| id)
                .collect();
            let mut dirty = Vec::new();
            for id in expired {
                core.leases.remove(&id);
                subcore_metrics::inc(mx::SERVE_LEASE_EXPIRED);
                let max_attempts = self.inner.opts.max_attempts;
                let rec = core.jobs.get_mut(&id).expect("leased ids are live jobs");
                if rec.attempts >= max_attempts {
                    rec.state = JobState::Failed;
                    rec.error = Some(ExecError::new(
                        "lease-expired",
                        format!("lease expired after {} attempt(s); worker wedged", rec.attempts),
                    ));
                    subcore_metrics::inc(mx::SERVE_JOB_FAILED);
                    let rec = rec.clone();
                    core.by_key.remove(&rec.key);
                    dirty.push(rec);
                } else {
                    rec.state = JobState::Queued;
                    dirty.push(rec.clone());
                    core.ready.push_back(id);
                }
            }
            if !dirty.is_empty() {
                core.note_depth();
            }
            drop(core);
            for rec in &dirty {
                self.inner.queue.persist(rec);
            }
            if !dirty.is_empty() {
                self.inner.cv.notify_all();
            }
        }
    }
}
