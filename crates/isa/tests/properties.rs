//! Property-based tests of trace-representation invariants.

use proptest::prelude::*;
use std::sync::Arc;
use subcore_isa::{Instruction, OpClass, Reg, Segment, WarpProgram};

fn arb_body() -> impl Strategy<Value = Vec<Instruction>> {
    prop::collection::vec(
        (0u8..32, 0u8..32, 0u8..32).prop_map(|(d, a, b)| {
            Instruction::new(OpClass::FmaF32, Some(Reg(d)), &[Reg(a), Reg(b)])
        }),
        1..6,
    )
}

fn arb_program() -> impl Strategy<Value = Arc<WarpProgram>> {
    prop::collection::vec((arb_body(), 0u32..20), 0..5).prop_map(|segs| {
        let mut segments: Vec<Segment> =
            segs.into_iter().map(|(body, repeat)| Segment { body: body.into(), repeat }).collect();
        segments.push(Segment {
            body: vec![Instruction::new(OpClass::Exit, None, &[])].into(),
            repeat: 1,
        });
        Arc::new(WarpProgram::from_segments(segments))
    })
}

proptest! {
    /// The cursor replays exactly `dynamic_len` instructions, with strictly
    /// increasing dynamic indices starting at zero, ending in `exit`.
    #[test]
    fn cursor_replays_dynamic_len(program in arb_program()) {
        let expected = program.dynamic_len();
        let mut cursor = program.cursor();
        let mut count = 0u64;
        let mut last = None;
        while let Some((instr, idx)) = cursor.next_instruction() {
            prop_assert_eq!(idx, count);
            count += 1;
            last = Some(instr);
        }
        prop_assert_eq!(count, expected);
        prop_assert_eq!(last.map(|i| i.op), Some(OpClass::Exit));
        prop_assert!(cursor.at_end());
    }

    /// Peek never disagrees with the next instruction taken.
    #[test]
    fn peek_is_consistent(program in arb_program()) {
        let mut cursor = program.cursor();
        loop {
            let peeked = cursor.peek();
            let taken = cursor.next_instruction().map(|(i, _)| i);
            prop_assert_eq!(peeked, taken);
            if taken.is_none() {
                break;
            }
        }
    }

    /// Cloned cursors diverge independently (no shared mutable state).
    #[test]
    fn cursors_are_independent(program in arb_program(), skip in 0u64..16) {
        let mut a = program.cursor();
        for _ in 0..skip {
            if a.next_instruction().is_none() {
                break;
            }
        }
        let mut b = a.clone();
        let ra: Vec<_> = std::iter::from_fn(|| a.next_instruction()).collect();
        let rb: Vec<_> = std::iter::from_fn(|| b.next_instruction()).collect();
        prop_assert_eq!(ra, rb);
    }
}

mod profile_consistency {
    use proptest::prelude::*;
    use std::sync::Arc;
    use subcore_isa::{
        Instruction, MemPattern, OpClass, ProgramProfile, Reg, Segment, WarpProgram,
    };

    /// Instructions spanning several pipelines, operand arities, and the
    /// memory flag, so every `ProgramProfile` field is exercised.
    fn arb_mixed_instr() -> impl Strategy<Value = Instruction> {
        let r = || (0u8..32).prop_map(Reg);
        prop_oneof![
            (r(), r(), r(), r()).prop_map(|(d, a, b, c)| Instruction::new(
                OpClass::FmaF32,
                Some(d),
                &[a, b, c]
            )),
            (r(), r(), r()).prop_map(|(d, a, b)| Instruction::new(
                OpClass::ArithI32,
                Some(d),
                &[a, b]
            )),
            (r(), r()).prop_map(|(d, a)| Instruction::new(OpClass::Special, Some(d), &[a])),
            Just(Instruction::new(OpClass::Barrier, None, &[])),
            (r(), r()).prop_map(|(d, a)| Instruction::mem(
                OpClass::LoadGlobal,
                Some(d),
                &[a],
                MemPattern::Coalesced { region: 0, step: 128 }
            )),
            (r(), r()).prop_map(|(data, a)| Instruction::mem(
                OpClass::StoreGlobal,
                None,
                &[data, a],
                MemPattern::Coalesced { region: 1, step: 128 }
            )),
        ]
    }

    /// Programs with zero-repeat segments (dead code the profile must
    /// skip), down to the smallest constructible shape: exit only.
    /// (`WarpProgram::from_segments` requires the trailing exit, so a
    /// wholly-empty body is unrepresentable.)
    fn arb_mixed_program() -> impl Strategy<Value = Arc<WarpProgram>> {
        prop::collection::vec((prop::collection::vec(arb_mixed_instr(), 1..6), 0u32..20), 0..6)
            .prop_map(|segs| {
                let mut segments: Vec<Segment> = segs
                    .into_iter()
                    .map(|(body, repeat)| Segment { body: body.into(), repeat })
                    .collect();
                segments.push(Segment {
                    body: vec![Instruction::new(OpClass::Exit, None, &[])].into(),
                    repeat: 1,
                });
                Arc::new(WarpProgram::from_segments(segments))
            })
    }

    /// The profile a full dynamic replay would produce.
    fn walk_profile(program: &Arc<WarpProgram>) -> (u64, [u64; 7], u64, u64) {
        let mut cursor = program.cursor();
        let (mut instrs, mut per_pipe, mut srcs, mut mems) = (0u64, [0u64; 7], 0u64, 0u64);
        while let Some((instr, _)) = cursor.next_instruction() {
            instrs += 1;
            per_pipe[instr.op.pipeline().index()] += 1;
            srcs += instr.num_sources() as u64;
            if instr.op.is_mem() {
                mems += 1;
            }
        }
        (instrs, per_pipe, srcs, mems)
    }

    proptest! {
        /// `ProgramProfile::of` (O(static size), weighting bodies by their
        /// repeat counts) agrees field-for-field with a full `Cursor` walk
        /// over the dynamic stream — including zero-repeat segments, which
        /// both must skip.
        #[test]
        fn profile_agrees_with_cursor_walk(program in arb_mixed_program()) {
            let profile = ProgramProfile::of(&program);
            let (instrs, per_pipe, srcs, mems) = walk_profile(&program);
            prop_assert_eq!(profile.instructions, instrs);
            prop_assert_eq!(profile.per_pipeline, per_pipe);
            prop_assert_eq!(profile.source_operands, srcs);
            prop_assert_eq!(profile.memory_instructions, mems);
            prop_assert_eq!(profile.instructions, program.dynamic_len());
        }
    }

    fn exit_segment() -> Segment {
        Segment { body: vec![Instruction::new(OpClass::Exit, None, &[])].into(), repeat: 1 }
    }

    #[test]
    fn minimal_program_profiles_to_one_exit() {
        // The smallest constructible program: exit only.
        let minimal = Arc::new(WarpProgram::from_segments(vec![exit_segment()]));
        let profile = ProgramProfile::of(&minimal);
        assert_eq!(profile.instructions, 1);
        assert_eq!(profile.source_operands, 0);
        assert_eq!(profile.memory_instructions, 0);
        let (instrs, per_pipe, srcs, mems) = walk_profile(&minimal);
        assert_eq!((instrs, srcs, mems), (1, 0, 0));
        assert_eq!(profile.per_pipeline, per_pipe);
    }

    #[test]
    fn zero_repeat_segments_contribute_nothing() {
        let instr = Instruction::new(OpClass::FmaF32, Some(Reg(0)), &[Reg(1), Reg(2)]);
        let dead = Arc::new(WarpProgram::from_segments(vec![
            Segment { body: vec![instr].into(), repeat: 0 },
            exit_segment(),
        ]));
        let minimal = Arc::new(WarpProgram::from_segments(vec![exit_segment()]));
        assert_eq!(ProgramProfile::of(&dead), ProgramProfile::of(&minimal));
        assert_eq!(walk_profile(&dead), walk_profile(&minimal));
    }
}

mod text_roundtrip {
    use proptest::prelude::*;
    use std::sync::Arc;
    use subcore_isa::{
        parse_program, write_program, Instruction, MemPattern, OpClass, Reg, Segment, WarpProgram,
    };

    fn arb_instr() -> impl Strategy<Value = Instruction> {
        let r = || (0u8..32).prop_map(Reg);
        prop_oneof![
            (r(), r(), r(), r()).prop_map(|(d, a, b, c)| Instruction::new(
                OpClass::FmaF32,
                Some(d),
                &[a, b, c]
            )),
            (r(), r(), r()).prop_map(|(d, a, b)| Instruction::new(
                OpClass::ArithI32,
                Some(d),
                &[a, b]
            )),
            (r(), r()).prop_map(|(d, a)| Instruction::new(OpClass::Special, Some(d), &[a])),
            (r(), r(), 0u16..8, 1u32..4096).prop_map(|(d, a, region, step)| Instruction::mem(
                OpClass::LoadGlobal,
                Some(d),
                &[a],
                MemPattern::Coalesced { region, step }
            )),
            (r(), r(), 0u16..8, 1u32..65536).prop_map(|(d, a, region, span)| Instruction::mem(
                OpClass::LoadGlobal,
                Some(d),
                &[a],
                MemPattern::Irregular { region, span_lines: span }
            )),
            (r(), r(), 1u8..33).prop_map(|(d, a, deg)| Instruction::mem(
                OpClass::LoadShared,
                Some(d),
                &[a],
                MemPattern::SharedConflict { degree: deg }
            )),
            (r(), r(), 0u16..8).prop_map(|(data, a, region)| Instruction::mem(
                OpClass::StoreGlobal,
                None,
                &[data, a],
                MemPattern::Coalesced { region, step: 128 }
            )),
        ]
    }

    fn arb_text_program() -> impl Strategy<Value = Arc<WarpProgram>> {
        prop::collection::vec((prop::collection::vec(arb_instr(), 1..5), 1u32..20), 1..4).prop_map(
            |segs| {
                let mut segments: Vec<Segment> = segs
                    .into_iter()
                    .map(|(body, repeat)| Segment { body: body.into(), repeat })
                    .collect();
                segments.push(Segment {
                    body: vec![Instruction::new(OpClass::Exit, None, &[])].into(),
                    repeat: 1,
                });
                Arc::new(WarpProgram::from_segments(segments))
            },
        )
    }

    proptest! {
        /// Any program the builder can express round-trips through the
        /// text format losslessly.
        #[test]
        fn text_format_roundtrips(program in arb_text_program()) {
            let text = write_program(&program);
            let parsed = parse_program(&text)
                .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
            prop_assert_eq!(program.dynamic_len(), parsed.dynamic_len());
            let mut a = program.cursor();
            let mut b = parsed.cursor();
            while let (Some((ia, _)), Some((ib, _))) = (a.next_instruction(), b.next_instruction())
            {
                prop_assert_eq!(ia, ib);
            }
        }
    }
}
