//! Simulation statistics.

use subcore_mem::MemStats;
use subcore_persist::{Json, JsonCodec, JsonError};
use subcore_trace::{StallKind, WindowedSeries};

/// Version stamp written into every on-disk cache entry.
///
/// Bump [`STATS_SCHEMA_VERSION`] whenever the meaning or layout of
/// [`RunStats`] changes; the engine package version covers behavioural
/// changes of the simulator itself. A cache entry whose stamp differs from
/// the running engine's is ignored (treated as a miss), so stale results
/// can never leak across engine versions.
pub const ENGINE_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Schema version of the serialized [`RunStats`] layout.
///
/// v2: added `issue_cycles`, `active_cycles`, and the optional `windowed`
/// trace series.
/// v3: added the per-tenant `tenants` breakdown (multi-tenant runs).
pub const STATS_SCHEMA_VERSION: u32 = 3;

/// Why a scheduler slot failed to issue in a given cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// No resident live warps at all.
    pub idle: u64,
    /// All live warps waiting at a block barrier.
    pub barrier: u64,
    /// Ready instructions existed but every collector unit was busy.
    pub no_collector_unit: u64,
    /// Warps had instructions but all were scoreboard-blocked.
    pub scoreboard: u64,
    /// Warps were runnable but instruction buffers were empty (fetch
    /// shadow or drained program).
    pub empty_ibuffer: u64,
}

impl StallBreakdown {
    /// Total stalled scheduler-cycles.
    pub fn total(&self) -> u64 {
        self.idle + self.barrier + self.no_collector_unit + self.scoreboard + self.empty_ibuffer
    }

    pub(crate) fn add(&mut self, other: &StallBreakdown) {
        self.idle += other.idle;
        self.barrier += other.barrier;
        self.no_collector_unit += other.no_collector_unit;
        self.scoreboard += other.scoreboard;
        self.empty_ibuffer += other.empty_ibuffer;
    }

    /// Charges one stalled scheduler-cycle to the bucket matching `kind`
    /// (the engine classifies the cause once and uses it for both the
    /// breakdown and the emitted [`StallKind`] probe event).
    pub fn bump(&mut self, kind: StallKind) {
        self.bump_n(kind, 1);
    }

    /// Charges `n` stalled scheduler-cycles to the bucket matching `kind`
    /// at once (the event-driven core's skip-ahead attributes a whole
    /// quiescent span in one step).
    pub fn bump_n(&mut self, kind: StallKind, n: u64) {
        match kind {
            StallKind::Idle => self.idle += n,
            StallKind::Barrier => self.barrier += n,
            StallKind::NoCollectorUnit => self.no_collector_unit += n,
            StallKind::Scoreboard => self.scoreboard += n,
            StallKind::EmptyIbuffer => self.empty_ibuffer += n,
        }
    }
}

impl JsonCodec for StallBreakdown {
    fn to_json(&self) -> Json {
        Json::obj([
            ("idle", Json::Uint(self.idle)),
            ("barrier", Json::Uint(self.barrier)),
            ("no_collector_unit", Json::Uint(self.no_collector_unit)),
            ("scoreboard", Json::Uint(self.scoreboard)),
            ("empty_ibuffer", Json::Uint(self.empty_ibuffer)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(StallBreakdown {
            idle: json.field("idle")?.as_u64()?,
            barrier: json.field("barrier")?.as_u64()?,
            no_collector_unit: json.field("no_collector_unit")?.as_u64()?,
            scoreboard: json.field("scoreboard")?.as_u64()?,
            empty_ibuffer: json.field("empty_ibuffer")?.as_u64()?,
        })
    }
}

/// Per-tenant breakdown of a multi-tenant run.
///
/// Filled by [`crate::simulate_tenants`], one entry per tenant in
/// submission order; single-tenant runs through [`crate::simulate_app`]
/// leave [`RunStats::tenants`] empty so legacy stats stay bit-identical.
///
/// `instructions` and `stalls` are summed over the SMs of the tenant's
/// partition; when tenants *share* SMs the shared SMs' counters are
/// charged to every tenant on them (attribution is per-SM, not per-warp).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant name (its application's name).
    pub name: String,
    /// Cycle the tenant arrived at.
    pub arrival: u64,
    /// Cycle the tenant's last kernel finished draining.
    pub finish: u64,
    /// Cycle at which each of the tenant's kernels finished draining.
    pub kernel_end_cycles: Vec<u64>,
    /// The absolute-cycle deadline, if the tenant declared one.
    pub deadline: Option<u64>,
    /// The SM ids of the tenant's partition, ascending.
    pub sm_set: Vec<u32>,
    /// Warp instructions issued by the partition's SMs.
    pub instructions: u64,
    /// Scheduler stall attribution summed over the partition's SMs.
    pub stalls: StallBreakdown,
}

impl TenantStats {
    /// Arrival-to-finish span.
    pub fn makespan(&self) -> u64 {
        self.finish.saturating_sub(self.arrival)
    }

    /// Signed slack against the deadline: positive means the tenant
    /// finished early, negative means it missed. `None` without a deadline.
    pub fn deadline_slack(&self) -> Option<i64> {
        self.deadline.map(|d| d as i64 - self.finish as i64)
    }

    /// Whether the tenant had a deadline and finished after it.
    pub fn missed_deadline(&self) -> bool {
        self.deadline_slack().is_some_and(|slack| slack < 0)
    }
}

impl JsonCodec for TenantStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("arrival", Json::Uint(self.arrival)),
            ("finish", Json::Uint(self.finish)),
            ("kernel_end_cycles", Json::from_u64_list(&self.kernel_end_cycles)),
            ("deadline", self.deadline.map_or(Json::Null, Json::Uint)),
            ("sm_set", Json::Arr(self.sm_set.iter().map(|&s| Json::Uint(u64::from(s))).collect())),
            ("instructions", Json::Uint(self.instructions)),
            ("stalls", self.stalls.to_json()),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(TenantStats {
            name: json.field("name")?.as_str()?.to_owned(),
            arrival: json.field("arrival")?.as_u64()?,
            finish: json.field("finish")?.as_u64()?,
            kernel_end_cycles: json.field("kernel_end_cycles")?.as_u64_list()?,
            deadline: match json.field("deadline")? {
                Json::Null => None,
                other => Some(other.as_u64()?),
            },
            sm_set: json
                .field("sm_set")?
                .as_u64_list()?
                .into_iter()
                .map(|s| {
                    u32::try_from(s)
                        .map_err(|_| JsonError { msg: format!("sm_set entry {s} exceeds u32") })
                })
                .collect::<Result<_, _>>()?,
            instructions: json.field("instructions")?.as_u64()?,
            stalls: StallBreakdown::from_json(json.field("stalls")?)?,
        })
    }
}

/// Results of simulating an application (or single kernel) to completion.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Total warp instructions issued.
    pub instructions: u64,
    /// Instructions issued per `[sm][scheduler]` — the input to the paper's
    /// Fig. 17 coefficient-of-variation metric.
    pub issued_per_scheduler: Vec<Vec<u64>>,
    /// Register-file read grants (each is a warp-wide, 32-lane read).
    pub rf_reads: u64,
    /// Register reads whose request queued behind another request for the
    /// same bank.
    pub rf_conflict_enqueues: u64,
    /// Optional per-cycle read-grant trace of the traced SM (Fig. 14);
    /// empty unless [`crate::StatsConfig::record_rf_trace`] was set.
    pub rf_read_trace: Vec<u16>,
    /// Scheduler stall attribution.
    pub stalls: StallBreakdown,
    /// Memory system counters.
    pub mem: MemStats,
    /// Cycle at which each kernel of the app finished draining.
    pub kernel_end_cycles: Vec<u64>,
    /// Instructions dispatched per execution pipeline class, in
    /// [`subcore_isa::Pipeline`] dense-index order (fma, alu, fp64, sfu,
    /// tensor, lsu).
    pub pipe_dispatched: [u64; 6],
    /// Sum over cycles of live resident warps (all SMs) — divide by
    /// `cycles × SMs` for average occupancy.
    pub warp_cycles: u64,
    /// Scheduler-cycles in which at least one instruction issued, summed
    /// over every scheduler domain of every SM. Together with
    /// [`RunStats::stalls`] this partitions the active scheduler-cycles
    /// exactly: `issue_cycles + stalls.total() == active_cycles × domains`.
    pub issue_cycles: u64,
    /// Cycles each SM actually ticked (was non-idle), summed over SMs.
    pub active_cycles: u64,
    /// The windowed probe-event time-series of the traced SM; `None`
    /// unless [`crate::StatsConfig::trace_window`] was nonzero.
    pub windowed: Option<WindowedSeries>,
    /// Per-tenant breakdowns of a multi-tenant run; empty for
    /// single-tenant runs through [`crate::simulate_app`].
    pub tenants: Vec<TenantStats>,
}

impl RunStats {
    /// Instructions per cycle across the whole GPU.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Mean, over SMs that issued anything, of the coefficient of variation
    /// of per-scheduler issued-instruction counts — the paper's Fig. 17
    /// balance metric (`c_v = σ / μ`, population σ).
    ///
    /// Returns `None` for fully-connected runs (a single scheduler domain
    /// has no variation to measure) or if nothing was issued.
    pub fn issue_cv(&self) -> Option<f64> {
        let mut cvs = Vec::new();
        for sm in &self.issued_per_scheduler {
            if sm.len() < 2 {
                return None;
            }
            let total: u64 = sm.iter().sum();
            if total == 0 {
                continue;
            }
            let n = sm.len() as f64;
            let mean = total as f64 / n;
            let var = sm.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
            cvs.push(var.sqrt() / mean);
        }
        if cvs.is_empty() {
            None
        } else {
            Some(cvs.iter().sum::<f64>() / cvs.len() as f64)
        }
    }

    /// Average register-file read grants per cycle (multiply by 32 for the
    /// paper's "reads per cycle" units, which count per-thread 4 B reads).
    pub fn rf_reads_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rf_reads as f64 / self.cycles as f64
        }
    }

    /// Average register-file read grants per cycle *per SM* (the paper's
    /// Fig. 14 axis is per-SM, with a peak of 8 grants = 256 per-thread
    /// reads on the V100 model).
    pub fn rf_reads_per_cycle_per_sm(&self) -> f64 {
        let sms = self.issued_per_scheduler.len().max(1);
        self.rf_reads_per_cycle() / sms as f64
    }

    /// Average live warps resident per SM (occupancy; 64 is the V100 max).
    pub fn avg_occupancy(&self) -> f64 {
        let sms = self.issued_per_scheduler.len().max(1);
        if self.cycles == 0 {
            0.0
        } else {
            self.warp_cycles as f64 / self.cycles as f64 / sms as f64
        }
    }
}

impl JsonCodec for RunStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cycles", Json::Uint(self.cycles)),
            ("instructions", Json::Uint(self.instructions)),
            (
                "issued_per_scheduler",
                Json::Arr(
                    self.issued_per_scheduler
                        .iter()
                        .map(Vec::as_slice)
                        .map(Json::from_u64_list)
                        .collect(),
                ),
            ),
            ("rf_reads", Json::Uint(self.rf_reads)),
            ("rf_conflict_enqueues", Json::Uint(self.rf_conflict_enqueues)),
            (
                "rf_read_trace",
                Json::Arr(self.rf_read_trace.iter().map(|&x| Json::Uint(u64::from(x))).collect()),
            ),
            ("stalls", self.stalls.to_json()),
            ("mem", self.mem.to_json()),
            ("kernel_end_cycles", Json::from_u64_list(&self.kernel_end_cycles)),
            ("pipe_dispatched", Json::from_u64_list(&self.pipe_dispatched)),
            ("warp_cycles", Json::Uint(self.warp_cycles)),
            ("issue_cycles", Json::Uint(self.issue_cycles)),
            ("active_cycles", Json::Uint(self.active_cycles)),
            ("windowed", self.windowed.as_ref().map_or(Json::Null, JsonCodec::to_json)),
            ("tenants", Json::Arr(self.tenants.iter().map(JsonCodec::to_json).collect())),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let pipe_list = json.field("pipe_dispatched")?.as_u64_list()?;
        let pipe_dispatched: [u64; 6] = pipe_list.as_slice().try_into().map_err(|_| JsonError {
            msg: format!("pipe_dispatched needs 6 entries, found {}", pipe_list.len()),
        })?;
        Ok(RunStats {
            cycles: json.field("cycles")?.as_u64()?,
            instructions: json.field("instructions")?.as_u64()?,
            issued_per_scheduler: json
                .field("issued_per_scheduler")?
                .as_arr()?
                .iter()
                .map(Json::as_u64_list)
                .collect::<Result<_, _>>()?,
            rf_reads: json.field("rf_reads")?.as_u64()?,
            rf_conflict_enqueues: json.field("rf_conflict_enqueues")?.as_u64()?,
            rf_read_trace: json
                .field("rf_read_trace")?
                .as_u64_list()?
                .into_iter()
                .map(|x| {
                    u16::try_from(x).map_err(|_| JsonError {
                        msg: format!("rf_read_trace entry {x} exceeds u16"),
                    })
                })
                .collect::<Result<_, _>>()?,
            stalls: StallBreakdown::from_json(json.field("stalls")?)?,
            mem: MemStats::from_json(json.field("mem")?)?,
            kernel_end_cycles: json.field("kernel_end_cycles")?.as_u64_list()?,
            pipe_dispatched,
            warp_cycles: json.field("warp_cycles")?.as_u64()?,
            issue_cycles: json.field("issue_cycles")?.as_u64()?,
            active_cycles: json.field("active_cycles")?.as_u64()?,
            windowed: match json.field("windowed")? {
                Json::Null => None,
                other => Some(WindowedSeries::from_json(other)?),
            },
            // Tolerate v2 archives that predate the field.
            tenants: match json.field("tenants") {
                Err(_) | Ok(Json::Null) => Vec::new(),
                Ok(list) => {
                    list.as_arr()?.iter().map(TenantStats::from_json).collect::<Result<_, _>>()?
                }
            },
        })
    }
}

/// Errors produced by a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configured cycle limit was reached before the workload drained —
    /// almost always a deadlocked workload (e.g. a barrier no warp can
    /// reach) or a pathologically undersized limit.
    CycleLimitExceeded {
        /// The limit that was hit.
        limit: u64,
    },
    /// A kernel requires more resources than one SM provides (it could
    /// never be scheduled).
    KernelUnschedulable {
        /// Name of the offending kernel.
        kernel: String,
        /// Human-readable description of the resource that does not fit.
        reason: String,
    },
    /// A multi-tenant run was given an unusable SM partition (empty set,
    /// SM id beyond the GPU, or no tenants at all).
    InvalidPartition {
        /// Name of the offending tenant (empty when no tenant is at fault).
        tenant: String,
        /// Human-readable description of what is wrong with the partition.
        reason: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CycleLimitExceeded { limit } => {
                write!(f, "simulation exceeded the {limit}-cycle safety limit")
            }
            SimError::KernelUnschedulable { kernel, reason } => {
                write!(f, "kernel `{kernel}` can never be scheduled: {reason}")
            }
            SimError::InvalidPartition { tenant, reason } => {
                if tenant.is_empty() {
                    write!(f, "invalid tenant partition: {reason}")
                } else {
                    write!(f, "tenant `{tenant}` has an invalid partition: {reason}")
                }
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        let s = RunStats::default();
        assert_eq!(s.ipc(), 0.0);
    }

    #[test]
    fn cv_balanced_is_zero() {
        let s =
            RunStats { issued_per_scheduler: vec![vec![100, 100, 100, 100]], ..Default::default() };
        assert_eq!(s.issue_cv(), Some(0.0));
    }

    #[test]
    fn cv_pathological_imbalance() {
        let s = RunStats { issued_per_scheduler: vec![vec![400, 0, 0, 0]], ..Default::default() };
        // σ of [400,0,0,0] is 173.2, μ = 100 → cv = √3 ≈ 1.732.
        let cv = s.issue_cv().unwrap();
        assert!((cv - 3f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn cv_none_for_fully_connected() {
        let s = RunStats { issued_per_scheduler: vec![vec![100]], ..Default::default() };
        assert_eq!(s.issue_cv(), None);
    }

    #[test]
    fn stall_totals_add_up() {
        let mut a = StallBreakdown { idle: 1, barrier: 2, ..Default::default() };
        let b = StallBreakdown { scoreboard: 3, ..Default::default() };
        a.add(&b);
        assert_eq!(a.total(), 6);
    }

    #[test]
    fn run_stats_round_trip_through_json() {
        let stats = RunStats {
            cycles: (1 << 53) + 7, // past f64's exact-integer range
            instructions: 123_456,
            issued_per_scheduler: vec![vec![10, 20, 30, 40], vec![1, 2, 3, 4]],
            rf_reads: 999,
            rf_conflict_enqueues: 55,
            rf_read_trace: vec![0, 8, u16::MAX],
            stalls: StallBreakdown {
                idle: 1,
                barrier: 2,
                no_collector_unit: 3,
                scoreboard: 4,
                empty_ibuffer: 5,
            },
            mem: MemStats { l1_hits: 7, l2_misses: 9, ..Default::default() },
            kernel_end_cycles: vec![100, 200],
            pipe_dispatched: [1, 2, 3, 4, 5, 6],
            warp_cycles: 777,
            issue_cycles: 888,
            active_cycles: 1111,
            windowed: Some(WindowedSeries {
                sm: 0,
                window: 64,
                domains: 4,
                banks: 2,
                total_cycles: 128,
                windows: Vec::new(),
            }),
            tenants: vec![TenantStats {
                name: "t0".into(),
                arrival: 10,
                finish: 200,
                kernel_end_cycles: vec![100, 200],
                deadline: Some(250),
                sm_set: vec![0, 1],
                instructions: 42,
                stalls: StallBreakdown { idle: 6, ..Default::default() },
            }],
        };
        let text = stats.to_json().render();
        let back = RunStats::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, stats);
        // And the serialized form itself is deterministic.
        assert_eq!(back.to_json().render(), text);
        // A stats block without a trace serializes the field as null.
        let untraced = RunStats::default();
        assert!(untraced.to_json().render().contains("\"windowed\":null"));
        let back = RunStats::from_json(&Json::parse(&untraced.to_json().render()).unwrap());
        assert_eq!(back.unwrap().windowed, None);
    }

    #[test]
    fn run_stats_decode_rejects_malformed() {
        let mut good = RunStats::default().to_json();
        if let Json::Obj(map) = &mut good {
            map.insert("pipe_dispatched".into(), Json::from_u64_list(&[1, 2, 3]));
        }
        assert!(RunStats::from_json(&good).unwrap_err().msg.contains("6 entries"));
        assert!(RunStats::from_json(&Json::Null).is_err());
    }

    #[test]
    fn errors_display() {
        let e = SimError::CycleLimitExceeded { limit: 42 };
        assert!(e.to_string().contains("42"));
        let e = SimError::KernelUnschedulable { kernel: "k".into(), reason: "too fat".into() };
        assert!(e.to_string().contains("too fat"));
        let e = SimError::InvalidPartition { tenant: "t".into(), reason: "empty SM set".into() };
        assert!(e.to_string().contains("`t`") && e.to_string().contains("empty SM set"));
        let e = SimError::InvalidPartition { tenant: String::new(), reason: "no tenants".into() };
        assert!(e.to_string().contains("no tenants"));
    }

    #[test]
    fn tenant_stats_qos_accessors() {
        let mut t = TenantStats {
            arrival: 100,
            finish: 600,
            deadline: Some(500),
            ..TenantStats::default()
        };
        assert_eq!(t.makespan(), 500);
        assert_eq!(t.deadline_slack(), Some(-100));
        assert!(t.missed_deadline());
        t.deadline = Some(800);
        assert_eq!(t.deadline_slack(), Some(200));
        assert!(!t.missed_deadline());
        t.deadline = None;
        assert_eq!(t.deadline_slack(), None);
        assert!(!t.missed_deadline());
    }

    #[test]
    fn v2_stats_without_tenants_field_still_decode() {
        let mut legacy = RunStats::default().to_json();
        if let Json::Obj(map) = &mut legacy {
            map.remove("tenants");
        }
        let back = RunStats::from_json(&legacy).unwrap();
        assert!(back.tenants.is_empty());
    }
}
