//! Synthetic TPC-H query workloads (Figs. 15–17 of the paper).
//!
//! The paper runs the 22 TPC-H SQL queries through Spark-RAPIDS on a 100 GB
//! database, in two variants: *uncompressed* raw parquet and *compressed*
//! (snappy) parquet. We model each query as a short pipeline of kernels that
//! reproduces the properties the sub-core mechanisms react to:
//!
//! * a **scan** kernel — streaming, memory-bound, balanced;
//! * a **join/filter** kernel — irregular accesses and *warp-specialized*
//!   imbalance: one long-running warp every 4 warps (the pattern the paper
//!   measured and designed SRR around), with a per-query long-warp factor;
//! * an **aggregate** kernel — compute-bound, balanced.
//!
//! The compressed variant prepends a **snappy-decompression** kernel with
//! extreme warp specialization (the paper reports issue imbalance "on the
//! order of 100×" for this kernel), which is why compressed queries gain
//! more from hashed assignment (SRR +33.1% vs. +17.5% uncompressed).
//!
//! Per-query shape parameters are fixed constants chosen once (they stand in
//! for the real queries' operator mixes); they are *not* fitted per design —
//! every design point sees the same workload.

use crate::spec::{Imbalance, KernelParams, Mix};
use subcore_isa::{App, Suite};

/// Number of TPC-H queries.
pub const NUM_QUERIES: u32 = 22;

/// Per-query workload shape: (long-warp factor of the join kernel,
/// join-kernel weight, scan-kernel weight, agg-kernel weight).
///
/// Weights scale iteration counts; the factor controls inter-warp
/// divergence. Query 8 gets the largest factor (the paper's worst-balance
/// query, baseline CV 1.01); "easy" queries like q1/q6 (scan-heavy
/// aggregations) get small factors.
const QUERY_SHAPE: [(u32, u32, u32, u32); NUM_QUERIES as usize] = [
    // (join_factor, join_w, scan_w, agg_w)            query
    (2, 2, 4, 2), // q1  - scan + aggregate heavy
    (3, 3, 2, 1), // q2  - multi-join
    (3, 3, 3, 1), // q3
    (3, 2, 3, 1), // q4
    (4, 3, 2, 1), // q5  - 6-table join
    (2, 1, 4, 1), // q6  - pure scan/filter
    (3, 3, 2, 1), // q7
    (4, 4, 2, 1), // q8  - worst balance in the paper (CV 1.01)
    (4, 4, 2, 1), // q9  - largest join tree
    (3, 3, 3, 1), // q10
    (3, 2, 2, 1), // q11
    (3, 2, 3, 1), // q12
    (3, 3, 2, 1), // q13
    (3, 2, 3, 1), // q14
    (3, 2, 3, 1), // q15
    (3, 3, 2, 1), // q16
    (4, 3, 2, 1), // q17
    (4, 4, 2, 1), // q18
    (3, 2, 3, 1), // q19
    (3, 3, 2, 1), // q20
    (4, 4, 2, 1), // q21 - heavy exists/anti-join
    (3, 2, 2, 1), // q22
];

/// Long-warp factor of the snappy decompression kernel in the compressed
/// variant. Decompression is highly warp-specialized: a handful of warps do
/// nearly all the work.
const DECOMP_FACTOR: u32 = 24;

/// Builds one TPC-H query app.
///
/// # Panics
///
/// Panics if `query` is not in `1..=22`.
pub fn tpch_query(query: u32, compressed: bool) -> App {
    assert!((1..=NUM_QUERIES).contains(&query), "TPC-H defines queries 1..=22");
    let (factor, join_w, scan_w, agg_w) = QUERY_SHAPE[(query - 1) as usize];
    let suite = if compressed { Suite::TpchCompressed } else { Suite::TpchUncompressed };
    let prefix = if compressed { "tpcC" } else { "tpcU" };
    let seed = u64::from(query) * 7919 + u64::from(compressed);

    let mut kernels = Vec::new();
    if compressed {
        let mut decomp = KernelParams::base(format!("{prefix}-q{query}-snappy"));
        decomp.blocks = 48;
        decomp.warps_per_block = 8;
        decomp.regs_per_thread = 32;
        decomp.reg_span = 16;
        // Snappy decompression is cache-resident byte-shuffling integer
        // work: the few specialized warps issue huge instruction counts.
        decomp.mix = Mix { iadd: 10, fadd: 3, load_stream: 2, store: 1, ..Mix::streaming() };
        decomp.body_len = 16;
        decomp.iters = 6;
        decomp.imbalance = Imbalance::EveryNth { period: 4, factor: DECOMP_FACTOR };
        decomp.seed = seed ^ 0xdec0;
        kernels.push(decomp);
    }

    let mut scan = KernelParams::base(format!("{prefix}-q{query}-scan"));
    scan.blocks = 48;
    scan.warps_per_block = 8;
    scan.regs_per_thread = 24;
    scan.reg_span = 12;
    // Streaming scans: few instructions, each memory-bound (high CPI), so
    // the scan contributes time but few issued instructions.
    scan.mix = Mix { load_stream: 4, iadd: 2, store: 1, fma: 1, ..Mix::streaming() };
    scan.body_len = 8;
    scan.iters = 24 * scan_w;
    scan.seed = seed ^ 0x5ca0;
    kernels.push(scan);

    let mut join = KernelParams::base(format!("{prefix}-q{query}-join"));
    join.blocks = 48;
    join.warps_per_block = 8;
    join.regs_per_thread = 32;
    join.reg_span = 16;
    // Warp-specialized probe loop: the long warps spin on mostly
    // cache-resident integer work (low CPI), so they dominate *issued
    // instructions* (driving the Fig. 17 CV) while the balanced kernels
    // dominate per-instruction latency.
    join.mix = Mix { iadd: 10, fadd: 5, load_irregular: 1, ..Mix::irregular() };
    join.mem.irregular_span = 1 << 6;
    join.body_len = 16;
    join.iters = 4 * join_w;
    join.imbalance = Imbalance::EveryNth { period: 4, factor };
    join.seed = seed ^ 0x101;
    kernels.push(join);

    let mut agg = KernelParams::base(format!("{prefix}-q{query}-agg"));
    agg.blocks = 48;
    agg.warps_per_block = 8;
    agg.regs_per_thread = 24;
    agg.reg_span = 12;
    agg.mix = Mix::compute();
    agg.body_len = 8;
    agg.iters = 48 * agg_w;
    agg.seed = seed ^ 0xa66;
    kernels.push(agg);

    crate::spec::AppParams { name: format!("{prefix}-q{query}"), suite, kernels }.build()
}

/// All 22 queries of one variant.
pub fn tpch_suite(compressed: bool) -> Vec<App> {
    (1..=NUM_QUERIES).map(|q| tpch_query(q, compressed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_22_queries() {
        assert_eq!(tpch_suite(false).len(), 22);
        assert_eq!(tpch_suite(true).len(), 22);
    }

    #[test]
    fn names_match_table_iii_style() {
        let q8 = tpch_query(8, false);
        assert_eq!(q8.name(), "tpcU-q8");
        assert_eq!(q8.suite(), Suite::TpchUncompressed);
        let q9 = tpch_query(9, true);
        assert_eq!(q9.name(), "tpcC-q9");
        assert_eq!(q9.suite(), Suite::TpchCompressed);
    }

    #[test]
    fn compressed_adds_decompression_kernel() {
        let u = tpch_query(5, false);
        let c = tpch_query(5, true);
        assert_eq!(c.kernels().len(), u.kernels().len() + 1);
        assert!(c.kernels()[0].name().contains("snappy"));
    }

    #[test]
    fn join_kernels_are_warp_specialized() {
        let q = tpch_query(8, false);
        let join = q
            .kernels()
            .iter()
            .find(|k| k.name().contains("join"))
            .expect("every query has a join kernel");
        let long = join.program(0).dynamic_len();
        let short = join.program(1).dynamic_len();
        assert!(long >= 3 * short, "q8 long warps ≈ 4× short: {long} vs {short}");
        // One long warp every 4: warp 4 is long, warps 5-7 short.
        assert_eq!(join.program(4).dynamic_len(), long);
        assert_eq!(join.program(7).dynamic_len(), short);
    }

    #[test]
    #[should_panic(expected = "queries 1..=22")]
    fn query_zero_rejected() {
        let _ = tpch_query(0, false);
    }

    #[test]
    fn q8_has_the_largest_factor() {
        let max = QUERY_SHAPE.iter().map(|s| s.0).max().unwrap();
        assert_eq!(QUERY_SHAPE[7].0, max);
    }

    #[test]
    fn queries_are_deterministic() {
        let a = tpch_query(3, true);
        let b = tpch_query(3, true);
        assert_eq!(a.total_dynamic_instructions(), b.total_dynamic_instructions());
    }
}
