//! Point-in-time snapshots, their `subcore-persist` codecs, and the
//! Prometheus text renderer.
//!
//! A [`MetricsSnapshot`] is a self-contained JSON document: one line of
//! a snapshot stream (see [`crate::export`]). Gauges are encoded as
//! `f64` *bits* (a `u64`) so round-trips are exact even for values the
//! decimal rendering would distort. Decoders are tolerant the same way
//! the cache and journal loaders are: corrupt input yields an error,
//! never a panic.

use std::collections::BTreeMap;

use subcore_persist::{Json, JsonCodec, JsonError};

use crate::{bucket_upper_bound, HISTOGRAM_BUCKETS};

/// Version stamp embedded in every snapshot (`metrics_schema` field).
/// Bump when the snapshot layout changes incompatibly.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Bucket counts of one histogram at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered dotted name.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wraps on overflow).
    pub sum: u64,
    /// [`HISTOGRAM_BUCKETS`] log₂ bucket counts.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket where the cumulative count first
    /// reaches `q * count` — a conservative quantile estimate with
    /// log₂ resolution. Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper_bound(idx);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }
}

impl JsonCodec for HistogramSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("count", Json::Uint(self.count)),
            ("sum", Json::Uint(self.sum)),
            ("buckets", Json::from_u64_list(&self.buckets)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let mut buckets = json.field("buckets")?.as_u64_list()?;
        if buckets.len() > HISTOGRAM_BUCKETS {
            return Err(JsonError {
                msg: format!("histogram has {} buckets, max {HISTOGRAM_BUCKETS}", buckets.len()),
            });
        }
        buckets.resize(HISTOGRAM_BUCKETS, 0);
        Ok(HistogramSnapshot {
            name: json.field("name")?.as_str()?.to_string(),
            count: json.field("count")?.as_u64()?,
            sum: json.field("sum")?.as_u64()?,
            buckets,
        })
    }
}

/// Aggregate duration statistics for one span kind
/// (e.g. `campaign/job/simulate`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanAggSnapshot {
    /// `/`-joined span name chain.
    pub kind: String,
    /// Completed spans of this kind.
    pub count: u64,
    /// Total wall time, microseconds.
    pub total_us: u64,
    /// Longest single span, microseconds.
    pub max_us: u64,
}

impl JsonCodec for SpanAggSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::Str(self.kind.clone())),
            ("count", Json::Uint(self.count)),
            ("total_us", Json::Uint(self.total_us)),
            ("max_us", Json::Uint(self.max_us)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(SpanAggSnapshot {
            kind: json.field("kind")?.as_str()?.to_string(),
            count: json.field("count")?.as_u64()?,
            total_us: json.field("total_us")?.as_u64()?,
            max_us: json.field("max_us")?.as_u64()?,
        })
    }
}

/// A span still running at snapshot time (an in-flight job or phase).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpenSpanSnapshot {
    /// `/`-joined span name chain.
    pub kind: String,
    /// `/`-joined display labels (campaign name, `SimKey`, phase).
    pub path: String,
    /// Elapsed wall time so far, microseconds.
    pub elapsed_us: u64,
}

impl JsonCodec for OpenSpanSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::Str(self.kind.clone())),
            ("path", Json::Str(self.path.clone())),
            ("elapsed_us", Json::Uint(self.elapsed_us)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(OpenSpanSnapshot {
            kind: json.field("kind")?.as_str()?.to_string(),
            path: json.field("path")?.as_str()?.to_string(),
            elapsed_us: json.field("elapsed_us")?.as_u64()?,
        })
    }
}

/// A recently completed span with its attribution notes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecordSnapshot {
    /// `/`-joined span name chain.
    pub kind: String,
    /// `/`-joined display labels.
    pub path: String,
    /// Wall-clock duration, microseconds.
    pub dur_us: u64,
    /// Attribution notes in insertion order (`engine_mode`,
    /// `cycles_per_sec`, …).
    pub meta: Vec<(String, String)>,
}

impl JsonCodec for SpanRecordSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::Str(self.kind.clone())),
            ("path", Json::Str(self.path.clone())),
            ("dur_us", Json::Uint(self.dur_us)),
            (
                "meta",
                Json::Arr(
                    self.meta
                        .iter()
                        .map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), Json::Str(v.clone())]))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let mut meta = Vec::new();
        for pair in json.field("meta")?.as_arr()? {
            let kv = pair.as_arr()?;
            if kv.len() != 2 {
                return Err(JsonError { msg: format!("meta pair has {} items", kv.len()) });
            }
            meta.push((kv[0].as_str()?.to_string(), kv[1].as_str()?.to_string()));
        }
        Ok(SpanRecordSnapshot {
            kind: json.field("kind")?.as_str()?.to_string(),
            path: json.field("path")?.as_str()?.to_string(),
            dur_us: json.field("dur_us")?.as_u64()?,
            meta,
        })
    }
}

/// Everything a registry knows at one instant. One JSON line of a
/// snapshot stream.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// [`METRICS_SCHEMA_VERSION`] at encode time.
    pub version: u32,
    /// Monotonic per-registry snapshot number.
    pub seq: u64,
    /// Microseconds since the registry was created.
    pub uptime_us: u64,
    /// `(name, value)` for every registered counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Every registered histogram, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
    /// Per-kind span duration aggregates.
    pub span_aggs: Vec<SpanAggSnapshot>,
    /// Spans still open, oldest first.
    pub open_spans: Vec<OpenSpanSnapshot>,
    /// Recent completions, oldest first (bounded ring).
    pub recent_spans: Vec<SpanRecordSnapshot>,
}

impl MetricsSnapshot {
    /// Value of counter `name`, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Value of gauge `name`, if registered.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram `name`, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

fn pairs_to_json<V, F: Fn(&V) -> Json>(pairs: &[(String, V)], enc: F) -> Json {
    Json::Arr(pairs.iter().map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), enc(v)])).collect())
}

fn pairs_from_json<V, F: Fn(&Json) -> Result<V, JsonError>>(
    json: &Json,
    dec: F,
) -> Result<Vec<(String, V)>, JsonError> {
    let mut out = Vec::new();
    for pair in json.as_arr()? {
        let kv = pair.as_arr()?;
        if kv.len() != 2 {
            return Err(JsonError { msg: format!("metric pair has {} items", kv.len()) });
        }
        out.push((kv[0].as_str()?.to_string(), dec(&kv[1])?));
    }
    Ok(out)
}

fn list_from_json<T: JsonCodec>(json: &Json) -> Result<Vec<T>, JsonError> {
    json.as_arr()?.iter().map(T::from_json).collect()
}

impl JsonCodec for MetricsSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("metrics_schema", Json::Uint(u64::from(self.version))),
            ("seq", Json::Uint(self.seq)),
            ("uptime_us", Json::Uint(self.uptime_us)),
            ("counters", pairs_to_json(&self.counters, |v| Json::Uint(*v))),
            // f64 bits, not decimal text: exact round-trip.
            ("gauges", pairs_to_json(&self.gauges, |v| Json::Uint(v.to_bits()))),
            ("histograms", Json::Arr(self.histograms.iter().map(JsonCodec::to_json).collect())),
            ("span_aggs", Json::Arr(self.span_aggs.iter().map(JsonCodec::to_json).collect())),
            ("open_spans", Json::Arr(self.open_spans.iter().map(JsonCodec::to_json).collect())),
            ("recent_spans", Json::Arr(self.recent_spans.iter().map(JsonCodec::to_json).collect())),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let version = u32::try_from(json.field("metrics_schema")?.as_u64()?)
            .map_err(|_| JsonError { msg: "metrics_schema exceeds u32".to_string() })?;
        Ok(MetricsSnapshot {
            version,
            seq: json.field("seq")?.as_u64()?,
            uptime_us: json.field("uptime_us")?.as_u64()?,
            counters: pairs_from_json(json.field("counters")?, Json::as_u64)?,
            gauges: pairs_from_json(json.field("gauges")?, |v| Ok(f64::from_bits(v.as_u64()?)))?,
            histograms: list_from_json(json.field("histograms")?)?,
            span_aggs: list_from_json(json.field("span_aggs")?)?,
            open_spans: list_from_json(json.field("open_spans")?)?,
            recent_spans: list_from_json(json.field("recent_spans")?)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Prometheus text format
// ---------------------------------------------------------------------------

/// Maps a dotted metric name onto the Prometheus charset: every
/// character outside `[A-Za-z0-9_]` becomes `_`, and the result gains
/// a `subcore_` namespace prefix (`session.cache.hit` →
/// `subcore_session_cache_hit`).
#[must_use]
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("subcore_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn prom_escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format:
/// counters and gauges as single samples, histograms as cumulative
/// `_bucket{le=…}`/`_sum`/`_count` families, span aggregates as
/// `subcore_span_*{span="kind"}` series, plus `subcore_snapshot_seq`
/// and `subcore_uptime_us`.
#[must_use]
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# TYPE subcore_snapshot_seq counter");
    let _ = writeln!(out, "subcore_snapshot_seq {}", snap.seq);
    let _ = writeln!(out, "# TYPE subcore_uptime_us gauge");
    let _ = writeln!(out, "subcore_uptime_us {}", snap.uptime_us);
    for (name, value) in &snap.counters {
        let prom = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {prom} counter");
        let _ = writeln!(out, "{prom} {value}");
    }
    for (name, value) in &snap.gauges {
        let prom = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {prom} gauge");
        if value.is_finite() {
            let _ = writeln!(out, "{prom} {value}");
        } else {
            let _ = writeln!(out, "{prom} NaN");
        }
    }
    for hist in &snap.histograms {
        let prom = sanitize_metric_name(&hist.name);
        let _ = writeln!(out, "# TYPE {prom} histogram");
        let last_used = hist.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
        let mut cumulative = 0u64;
        for (idx, &n) in hist.buckets.iter().enumerate().take(last_used + 1) {
            cumulative += n;
            let _ =
                writeln!(out, "{prom}_bucket{{le=\"{}\"}} {cumulative}", bucket_upper_bound(idx));
        }
        let _ = writeln!(out, "{prom}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{prom}_sum {}", hist.sum);
        let _ = writeln!(out, "{prom}_count {}", hist.count);
    }
    if !snap.span_aggs.is_empty() {
        let _ = writeln!(out, "# TYPE subcore_span_count counter");
        let _ = writeln!(out, "# TYPE subcore_span_us_total counter");
        for agg in &snap.span_aggs {
            let label = prom_escape_label(&agg.kind);
            let _ = writeln!(out, "subcore_span_count{{span=\"{label}\"}} {}", agg.count);
            let _ = writeln!(out, "subcore_span_us_total{{span=\"{label}\"}} {}", agg.total_us);
        }
    }
    out
}

fn valid_prom_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn check_sample_line(line: &str) -> Result<(), String> {
    let (series, value) =
        line.rsplit_once(' ').ok_or_else(|| "sample line has no value separator".to_string())?;
    if value.parse::<f64>().is_err() && value != "NaN" && value != "+Inf" && value != "-Inf" {
        return Err(format!("unparseable sample value `{value}`"));
    }
    let name = match series.split_once('{') {
        Some((name, rest)) => {
            if !rest.ends_with('}') {
                return Err(format!("unterminated label block in `{series}`"));
            }
            name
        }
        None => series,
    };
    if !valid_prom_name(name) {
        return Err(format!("invalid metric name `{name}`"));
    }
    Ok(())
}

/// Validates Prometheus exposition text: every line must be blank, a
/// well-formed `# TYPE`/`# HELP` comment, or a `name[{labels}] value`
/// sample with a numeric value. Returns the number of sample lines.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut types: BTreeMap<&str, &str> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            match words.next() {
                Some("TYPE") => {
                    let name = words
                        .next()
                        .ok_or_else(|| format!("line {n}: TYPE without metric name"))?;
                    let kind = words
                        .next()
                        .ok_or_else(|| format!("line {n}: TYPE without metric type"))?;
                    if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                        return Err(format!("line {n}: unknown metric type `{kind}`"));
                    }
                    types.insert(name, kind);
                }
                Some("HELP") | Some("EOF") => {}
                _ => return Err(format!("line {n}: malformed comment `{line}`")),
            }
            continue;
        }
        check_sample_line(line).map_err(|e| format!("line {n}: {e}"))?;
        samples += 1;
    }
    if samples == 0 {
        return Err("no sample lines".to_string());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn busy_snapshot() -> MetricsSnapshot {
        let reg = Registry::new();
        reg.counter("session.cache.hit").inc_by(10);
        reg.counter("session.run").inc_by(12);
        reg.gauge("engine.cycles_per_sec").set(1.5e8);
        reg.gauge("weird.gauge").set(f64::NAN);
        let h = reg.histogram("session.sim.wall_us");
        for v in [0, 1, 7, 900, 40_000] {
            h.observe(v);
        }
        let mut campaign = reg.span("campaign", "fig_test");
        {
            let mut job = campaign.child("job", "deadbeef01234567");
            job.note("engine_mode", "adaptive");
        }
        let _open = campaign.child("job", "feedface89abcdef");
        let snap = reg.snapshot();
        campaign.note("done", "no");
        snap
    }

    #[test]
    fn snapshot_json_round_trips() {
        let snap = busy_snapshot();
        let text = snap.to_json().render();
        let back = MetricsSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        // NaN breaks PartialEq; compare the NaN gauge by bits and the
        // rest structurally.
        assert!(back.gauge("weird.gauge").unwrap().is_nan());
        let strip = |mut s: MetricsSnapshot| {
            s.gauges.retain(|(n, _)| n != "weird.gauge");
            s
        };
        assert_eq!(strip(back), strip(snap));
    }

    #[test]
    fn histogram_quantiles_are_bucket_bounds() {
        let h = busy_snapshot().histogram("session.sim.wall_us").cloned().unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.quantile(0.0), 0);
        // 3rd of 5 samples (value 7) lands in bucket 3 → upper bound 7.
        assert_eq!(h.quantile(0.5), 7);
        assert!(h.quantile(1.0) >= 40_000);
        assert_eq!(
            HistogramSnapshot::quantile(
                &HistogramSnapshot {
                    name: "empty".into(),
                    count: 0,
                    sum: 0,
                    buckets: vec![0; HISTOGRAM_BUCKETS]
                },
                0.9
            ),
            0
        );
    }

    #[test]
    fn prometheus_output_validates_and_names_are_sane() {
        let snap = busy_snapshot();
        let text = render_prometheus(&snap);
        let samples = validate_prometheus(&text).expect("rendered output must validate");
        assert!(samples > 5, "expected several samples, got {samples}");
        assert!(text.contains("subcore_session_cache_hit 10"));
        assert!(text.contains("subcore_session_sim_wall_us_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("subcore_span_count{span=\"campaign/job\"} 1"));
        assert_eq!(sanitize_metric_name("engine.cycles_per_sec"), "subcore_engine_cycles_per_sec");
    }

    #[test]
    fn prometheus_validator_rejects_garbage() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("just some words\n").is_err());
        assert!(validate_prometheus("ok_name notanumber\n").is_err());
        assert!(validate_prometheus("# TYPE x flavor\nx 1\n").is_err());
        assert!(validate_prometheus("9leading_digit 1\n").is_err());
        assert!(validate_prometheus("ok_name 1\n").is_ok());
    }

    #[test]
    fn corrupt_snapshot_json_errors_without_panic() {
        let good = busy_snapshot().to_json().render();
        for cut in [0, 5, good.len() / 2, good.len().saturating_sub(3)] {
            let _ = Json::parse(&good[..cut]).map(|j| MetricsSnapshot::from_json(&j));
        }
        let wrong = Json::parse("{\"seq\":1}").unwrap();
        assert!(MetricsSnapshot::from_json(&wrong).is_err());
    }
}
