//! Top-level GPU: thread-block scheduler, kernel sequencing, and the main
//! simulation loop.

use crate::config::{Connectivity, EngineMode, GpuConfig};
use crate::policy::Policies;
use crate::stats::{RunStats, SimError};
use crate::tenant::TenantCase;
use subcore_isa::{App, Kernel};
use subcore_trace::TraceSink;

/// How the engine actually ran a simulation: the configured mode plus the
/// decisions [`EngineMode::Adaptive`]'s density controller made. Kept
/// deliberately outside [`RunStats`] — results must stay bit-identical
/// across modes, and this report is exactly the part that is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineReport {
    /// The configured engine mode.
    pub mode: EngineMode,
    /// Adaptive evaluation windows completed (0 for the fixed modes).
    pub adaptive_windows: u64,
    /// Windows that ended on the reference-style full-scan fallback.
    pub adaptive_fallbacks: u64,
}

/// Simulates a whole application (its kernels run back-to-back) and returns
/// aggregate statistics.
///
/// # Errors
///
/// Returns [`SimError::KernelUnschedulable`] if any kernel's per-block
/// resource demand cannot fit on one SM under a balanced warp assignment,
/// and [`SimError::CycleLimitExceeded`] if the workload fails to drain
/// within [`GpuConfig::max_cycles`].
///
/// # Example
///
/// ```
/// use subcore_engine::{simulate_app, GpuConfig, Policies};
/// use subcore_isa::{fma_kernel, App, Suite};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let app = App::new("demo", Suite::Micro, vec![fma_kernel("fma", 4, 8, 64)]);
/// let cfg = GpuConfig::volta_v100().with_sms(2);
/// let stats = simulate_app(&cfg, &Policies::hardware_baseline(), &app)?;
/// assert!(stats.cycles > 0 && stats.instructions > 0);
/// # Ok(())
/// # }
/// ```
pub fn simulate_app(cfg: &GpuConfig, policies: &Policies, app: &App) -> Result<RunStats, SimError> {
    simulate_app_traced(cfg, policies, app, Vec::new())
}

/// [`simulate_app`] that also returns the [`EngineReport`] describing how
/// the engine ran (mode and, under [`EngineMode::Adaptive`], how often the
/// density controller fell back to full scans). The statistics are
/// bit-identical to [`simulate_app`]'s.
///
/// # Errors
///
/// Same as [`simulate_app`].
pub fn simulate_app_reported(
    cfg: &GpuConfig,
    policies: &Policies,
    app: &App,
) -> Result<(RunStats, EngineReport), SimError> {
    run_app(cfg, policies, app, Vec::new())
}

/// [`simulate_app`] with caller-supplied probe-event sinks.
///
/// Every sink observes the full event stream of [`StatsConfig::trace_sm`]
/// (plus [`TraceEvent::Occupancy`] transitions of every SM). When
/// [`StatsConfig::trace_window`] is non-zero an internal
/// [`WindowAggregator`] also listens and its series is attached to
/// [`RunStats::windowed`]; with `trace_window == 0` and no external sinks
/// the probe points are disabled and this is exactly [`simulate_app`].
///
/// [`StatsConfig::trace_sm`]: crate::config::StatsConfig::trace_sm
/// [`StatsConfig::trace_window`]: crate::config::StatsConfig::trace_window
/// [`TraceEvent::Occupancy`]: subcore_trace::TraceEvent::Occupancy
/// [`WindowAggregator`]: subcore_trace::WindowAggregator
///
/// # Errors
///
/// Same as [`simulate_app`].
pub fn simulate_app_traced(
    cfg: &GpuConfig,
    policies: &Policies,
    app: &App,
    sinks: Vec<&mut dyn TraceSink>,
) -> Result<RunStats, SimError> {
    run_app(cfg, policies, app, sinks).map(|(stats, _)| stats)
}

/// The single-app entry point: validates, then runs the app as the
/// degenerate one-tenant case of the multi-tenant dispatcher — one tenant
/// arriving at cycle 0 that owns every SM. `crate::tenant::run_cases` is
/// the engine's only main loop; results are bit-identical to the
/// pre-refactor single-app engine (the per-tenant breakdown is suppressed
/// so `RunStats` equality holds for cached and archived results).
fn run_app(
    cfg: &GpuConfig,
    policies: &Policies,
    app: &App,
    sinks: Vec<&mut dyn TraceSink>,
) -> Result<(RunStats, EngineReport), SimError> {
    cfg.validate();
    for kernel in app.kernels() {
        check_schedulable(cfg, kernel)?;
    }
    let case = TenantCase {
        name: app.name(),
        app,
        arrival: 0,
        deadline: None,
        sms: (0..cfg.num_sms as usize).collect(),
    };
    crate::tenant::run_cases(cfg, policies, std::slice::from_ref(&case), sinks, false)
}

/// Simulates a single kernel (wrapped in a one-kernel app).
///
/// # Errors
///
/// Same as [`simulate_app`].
pub fn simulate_kernel(
    cfg: &GpuConfig,
    policies: &Policies,
    kernel: Kernel,
) -> Result<RunStats, SimError> {
    let name = kernel.name().to_owned();
    let app = App::new(name, subcore_isa::Suite::Micro, vec![kernel]);
    simulate_app(cfg, policies, &app)
}

pub(crate) fn check_schedulable(cfg: &GpuConfig, kernel: &Kernel) -> Result<(), SimError> {
    let err =
        |reason: String| SimError::KernelUnschedulable { kernel: kernel.name().to_owned(), reason };
    if kernel.warps_per_block() > cfg.max_warps_per_sm {
        return Err(err(format!(
            "block has {} warps but the SM holds {}",
            kernel.warps_per_block(),
            cfg.max_warps_per_sm
        )));
    }
    if kernel.shared_mem_bytes() > cfg.shared_mem_per_sm {
        return Err(err(format!(
            "block needs {} B of shared memory but the SM has {} B",
            kernel.shared_mem_bytes(),
            cfg.shared_mem_per_sm
        )));
    }
    let domains = match cfg.connectivity {
        Connectivity::Partitioned => cfg.subcores_per_sm,
        Connectivity::FullyConnected => 1,
    };
    let regs_capacity = match cfg.connectivity {
        Connectivity::Partitioned => cfg.rf_regs_per_subcore,
        Connectivity::FullyConnected => cfg.rf_regs_per_subcore * cfg.subcores_per_sm,
    };
    // Balanced assigners place at most ceil(warps / domains) per sub-core.
    let per_domain = kernel.warps_per_block().div_ceil(domains);
    if per_domain * u32::from(kernel.regs_per_thread()) > regs_capacity {
        return Err(err(format!(
            "{} warps × {} regs/thread exceeds the {}-register sub-core file",
            per_domain,
            kernel.regs_per_thread(),
            regs_capacity
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Connectivity;
    use subcore_isa::{fma_kernel, App, KernelBuilder, ProgramBuilder, Reg, Suite};

    fn small_cfg() -> GpuConfig {
        GpuConfig::volta_v100().with_sms(1)
    }

    fn run(cfg: &GpuConfig, kernel: subcore_isa::Kernel) -> RunStats {
        simulate_kernel(cfg, &Policies::hardware_baseline(), kernel).expect("simulation runs")
    }

    #[test]
    fn single_warp_fma_executes_all_instructions() {
        let k = fma_kernel("one", 1, 1, 100);
        let stats = run(&small_cfg(), k);
        assert_eq!(stats.instructions, 102); // 100 fma + barrier + exit
        assert!(stats.cycles > 200, "dependent FMA chain serializes: {}", stats.cycles);
    }

    #[test]
    fn more_warps_improve_throughput() {
        let one = run(&small_cfg(), fma_kernel("w1", 1, 1, 200));
        let eight = run(&small_cfg(), fma_kernel("w8", 1, 8, 200));
        // 8 warps do 8x the work in far less than 8x the time.
        assert!(eight.instructions > one.instructions * 7);
        assert!(
            eight.cycles < one.cycles * 3,
            "8 warps ({}) should overlap, 1 warp took {}",
            eight.cycles,
            one.cycles
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(&small_cfg(), fma_kernel("d", 7, 8, 64));
        let b = run(&small_cfg(), fma_kernel("d", 7, 8, 64));
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.issued_per_scheduler, b.issued_per_scheduler);
    }

    #[test]
    fn round_robin_balances_uniform_warps() {
        let stats = run(&small_cfg(), fma_kernel("bal", 8, 8, 64));
        let cv = stats.issue_cv().expect("partitioned run has CV");
        assert!(cv < 0.05, "uniform warps should balance, cv = {cv}");
    }

    #[test]
    fn fully_connected_runs_and_is_not_slower() {
        let k = fma_kernel("fc", 8, 8, 128);
        let part = run(&small_cfg(), k.clone());
        let fc = run(&small_cfg().fully_connected(), k);
        assert_eq!(part.instructions, fc.instructions);
        assert!(fc.cycles <= part.cycles + part.cycles / 10);
    }

    #[test]
    fn barrier_synchronizes_block() {
        // One warp computes, others wait at the barrier; all must finish.
        let long = ProgramBuilder::new()
            .repeat(500, |b| {
                b.fma(Reg(0), Reg(0), Reg(1), Reg(2));
            })
            .barrier()
            .build();
        let short = ProgramBuilder::new().barrier().build();
        let k = KernelBuilder::new("bar")
            .blocks(1)
            .regs_per_thread(8)
            .per_warp_programs(vec![long, short.clone(), short.clone(), short])
            .build();
        let stats = run(&small_cfg(), k);
        assert_eq!(stats.instructions, 500 + 4 + 4); // fmas + barriers + exits
    }

    #[test]
    fn multi_kernel_apps_run_sequentially() {
        let app = App::new(
            "two",
            Suite::Micro,
            vec![fma_kernel("a", 2, 4, 32), fma_kernel("b", 2, 4, 32)],
        );
        let stats = simulate_app(&small_cfg(), &Policies::hardware_baseline(), &app).unwrap();
        assert_eq!(stats.kernel_end_cycles.len(), 2);
        assert!(stats.kernel_end_cycles[0] < stats.kernel_end_cycles[1]);
        assert_eq!(stats.cycles, *stats.kernel_end_cycles.last().unwrap());
    }

    #[test]
    fn memory_kernel_touches_the_hierarchy() {
        let p = ProgramBuilder::new()
            .repeat(32, |b| {
                b.load_global(Reg(3), Reg(4), 0, 128);
                b.fma(Reg(0), Reg(0), Reg(3), Reg(2));
            })
            .barrier()
            .build();
        let k = KernelBuilder::new("mem")
            .blocks(4)
            .warps_per_block(8)
            .regs_per_thread(16)
            .uniform_program(p)
            .build();
        let stats = run(&small_cfg(), k);
        assert!(stats.mem.l1_misses > 0, "streaming loads must miss");
        assert!(stats.cycles > 0);
    }

    #[test]
    fn shared_memory_conflicts_slow_execution() {
        let mk = |degree: u8| {
            let p = ProgramBuilder::new()
                .repeat(64, |b| {
                    b.load_shared(Reg(3), Reg(4), degree);
                    b.fma(Reg(0), Reg(0), Reg(3), Reg(2));
                })
                .barrier()
                .build();
            KernelBuilder::new("sh")
                .blocks(2)
                .warps_per_block(8)
                .regs_per_thread(16)
                .shared_mem_bytes(4096)
                .uniform_program(p)
                .build()
        };
        let free = run(&small_cfg(), mk(1));
        let conflicted = run(&small_cfg(), mk(32));
        assert!(
            conflicted.cycles > free.cycles,
            "32-way conflicts ({}) must be slower than conflict-free ({})",
            conflicted.cycles,
            free.cycles
        );
    }

    #[test]
    fn oversized_block_is_rejected() {
        let k = fma_kernel("fat", 1, 8, 4);
        let mut cfg = small_cfg();
        cfg.max_warps_per_sm = 4;
        let err = simulate_kernel(&cfg, &Policies::hardware_baseline(), k).unwrap_err();
        assert!(matches!(err, SimError::KernelUnschedulable { .. }));
    }

    #[test]
    fn register_pressure_is_rejected_when_impossible() {
        let p = ProgramBuilder::new().barrier().build();
        let k = KernelBuilder::new("regs")
            .blocks(1)
            .warps_per_block(16)
            .regs_per_thread(200)
            .uniform_program(p)
            .build();
        // 4 warps/sub-core × 200 regs = 800 > 512.
        let err = simulate_kernel(&small_cfg(), &Policies::hardware_baseline(), k).unwrap_err();
        assert!(matches!(err, SimError::KernelUnschedulable { .. }));
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let mut cfg = small_cfg();
        cfg.max_cycles = 10;
        let err =
            simulate_kernel(&cfg, &Policies::hardware_baseline(), fma_kernel("long", 4, 8, 4096))
                .unwrap_err();
        assert_eq!(err, SimError::CycleLimitExceeded { limit: 10 });
    }

    #[test]
    fn many_blocks_on_many_sms_scale() {
        let k = fma_kernel("scale", 64, 8, 64);
        let one = run(&small_cfg(), k.clone());
        let four = run(&GpuConfig::volta_v100().with_sms(4), k);
        assert!(
            four.cycles * 3 < one.cycles * 2,
            "4 SMs ({}) should be well under 2/3 the single-SM time ({})",
            four.cycles,
            one.cycles
        );
    }

    #[test]
    fn rf_trace_recorded_when_enabled() {
        let mut cfg = small_cfg();
        cfg.stats.record_rf_trace = true;
        let stats =
            simulate_kernel(&cfg, &Policies::hardware_baseline(), fma_kernel("trace", 2, 8, 64))
                .unwrap();
        assert_eq!(stats.rf_read_trace.len() as u64, stats.cycles);
        assert!(stats.rf_read_trace.iter().any(|&g| g > 0));
    }

    #[test]
    fn fully_connected_single_domain_stats() {
        let stats = run(&small_cfg().fully_connected(), fma_kernel("fc1", 4, 8, 32));
        assert_eq!(stats.issued_per_scheduler[0].len(), 1);
        assert_eq!(stats.issue_cv(), None);
    }

    #[test]
    fn bank_stealing_runs_and_preserves_work() {
        let mut cfg = small_cfg();
        cfg.bank_stealing = true;
        let base = run(&small_cfg(), fma_kernel("bs", 4, 8, 128));
        let steal = run(&cfg, fma_kernel("bs", 4, 8, 128));
        assert_eq!(base.instructions, steal.instructions);
    }

    #[test]
    fn connectivity_affects_domain_count() {
        let cfg = small_cfg();
        assert_eq!(cfg.connectivity, Connectivity::Partitioned);
        let stats = run(&cfg, fma_kernel("dc", 1, 4, 16));
        assert_eq!(stats.issued_per_scheduler[0].len(), 4);
    }
}

#[cfg(test)]
mod paper_behavior_tests {
    use super::*;
    use subcore_isa::{KernelBuilder, ProgramBuilder};

    /// Builds the paper's Fig. 4 microbenchmark: `compute` maps warp-in-block
    /// index → does it run the FMA loop (true) or exit immediately (false).
    fn fma_layout(name: &str, blocks: u32, layout: &[bool], fmas: u32) -> subcore_isa::Kernel {
        let long = ProgramBuilder::new()
            .repeat(fmas, |b| {
                b.fma(
                    subcore_isa::Reg(0),
                    subcore_isa::Reg(0),
                    subcore_isa::Reg(1),
                    subcore_isa::Reg(2),
                );
            })
            .barrier()
            .build();
        let empty = ProgramBuilder::new().barrier().build();
        let programs =
            layout.iter().map(|&c| if c { long.clone() } else { empty.clone() }).collect();
        KernelBuilder::new(name)
            .blocks(blocks)
            .regs_per_thread(8)
            .per_warp_programs(programs)
            .build()
    }

    #[test]
    fn unbalanced_fma_is_nearly_4x_slower_on_partitioned_sm() {
        // Fig. 3/4: baseline = 8 compute warps; unbalanced = the same 8
        // compute warps at warp ids ≡ 0 (mod 4) among 32 warps, so
        // round-robin pins them all to sub-core 0.
        let cfg = GpuConfig::volta_v100().with_sms(1);
        let baseline = fma_layout("base", 4, &[true; 8], 1024);
        let mut unbal_layout = [false; 32];
        for i in 0..8 {
            unbal_layout[i * 4] = true;
        }
        let unbalanced = fma_layout("unbal", 4, &unbal_layout, 1024);
        let mut bal_layout = [false; 32];
        bal_layout[..8].fill(true);
        let balanced = fma_layout("bal", 4, &bal_layout, 1024);

        let p = Policies::hardware_baseline();
        let tb = simulate_kernel(&cfg, &p, baseline).unwrap().cycles as f64;
        let tu = simulate_kernel(&cfg, &p, unbalanced).unwrap().cycles as f64;
        let tl = simulate_kernel(&cfg, &p, balanced).unwrap().cycles as f64;
        let slowdown = tu / tb;
        assert!(
            slowdown > 3.0 && slowdown < 4.5,
            "A100 measures 3.9x; got {slowdown:.2}x (base {tb}, unbal {tu})"
        );
        assert!(
            (tl / tb) < 1.15,
            "balanced layout matches baseline on partitioned SM, got {:.2}x",
            tl / tb
        );
    }

    #[test]
    fn unbalanced_fma_is_smoothed_by_fully_connected_sm() {
        let cfg = GpuConfig::volta_v100().with_sms(1).fully_connected();
        let baseline = fma_layout("base", 4, &[true; 8], 1024);
        let mut unbal_layout = [false; 32];
        for i in 0..8 {
            unbal_layout[i * 4] = true;
        }
        let unbalanced = fma_layout("unbal", 4, &unbal_layout, 1024);
        let p = Policies::hardware_baseline();
        let tb = simulate_kernel(&cfg, &p, baseline).unwrap().cycles as f64;
        let tu = simulate_kernel(&cfg, &p, unbalanced).unwrap().cycles as f64;
        assert!(
            (tu / tb) < 1.2,
            "Kepler-like monolithic SM shows no imbalance penalty, got {:.2}x",
            tu / tb
        );
    }
}

#[cfg(test)]
mod effect_tests {
    //! The paper's §I taxonomy lists four orthogonal sub-core effects. The
    //! headline two (bank conflicts, issue imbalance) are covered above and
    //! in `paper_behavior_tests`; these tests exercise the remaining two.

    use super::*;
    use subcore_isa::{KernelBuilder, ProgramBuilder, Reg};

    /// Effect #3: warps with diverse execution-unit demands. All
    /// tensor-core-heavy warps land on sub-core 0 under round robin, so its
    /// tensor unit serializes while the other three sub-cores' tensor units
    /// idle; the fully-connected SM pools all four.
    #[test]
    fn execution_unit_diversity_is_smoothed_by_fully_connected() {
        let tensor = ProgramBuilder::new()
            .repeat(256, |b| {
                b.hmma(Reg(8), Reg(0), Reg(1), Reg(2));
            })
            .barrier()
            .build();
        let alu = ProgramBuilder::new()
            .repeat(64, |b| {
                b.iadd(Reg(9), Reg(3), Reg(4));
            })
            .barrier()
            .build();
        let programs =
            (0..16u32).map(|w| if w % 4 == 0 { tensor.clone() } else { alu.clone() }).collect();
        let kernel = KernelBuilder::new("diverse")
            .blocks(4)
            .regs_per_thread(16)
            .per_warp_programs(programs)
            .build();
        let cfg = GpuConfig::volta_v100().with_sms(1);
        let p = Policies::hardware_baseline();
        let part = simulate_kernel(&cfg, &p, kernel.clone()).unwrap();
        let fc = simulate_kernel(&cfg.fully_connected(), &p, kernel).unwrap();
        assert!(
            (part.cycles as f64) > 1.5 * fc.cycles as f64,
            "pooled tensor units should smooth diverse demand: partitioned {} vs fc {}",
            part.cycles,
            fc.cycles
        );
    }

    /// Effect #4 (occupancy flavor): register capacity bounds resident
    /// blocks per sub-core, which costs latency hiding on memory-bound
    /// kernels.
    #[test]
    fn register_capacity_limits_occupancy() {
        let mk = |regs: u16| {
            let p = ProgramBuilder::new()
                .repeat(24, |b| {
                    b.load_global_pattern(
                        Reg(8),
                        Reg(0),
                        subcore_isa::MemPattern::Irregular { region: 0, span_lines: 1 << 16 },
                    );
                    b.fma(Reg(9), Reg(1), Reg(2), Reg(3));
                })
                .barrier()
                .build();
            KernelBuilder::new("occ")
                .blocks(16)
                .warps_per_block(8)
                .regs_per_thread(regs)
                .uniform_program(p)
                .build()
        };
        let cfg = GpuConfig::volta_v100().with_sms(1);
        let p = Policies::hardware_baseline();
        // 32 regs/thread: 8 blocks resident; 224 regs/thread: 1 block.
        let light = simulate_kernel(&cfg, &p, mk(32)).unwrap();
        let heavy = simulate_kernel(&cfg, &p, mk(224)).unwrap();
        assert!(
            heavy.cycles as f64 > 1.3 * light.cycles as f64,
            "register pressure should cost occupancy: {} vs {}",
            heavy.cycles,
            light.cycles
        );
    }

    /// A warp exiting while its siblings wait at a barrier must still
    /// release the barrier (CUDA semantics: exited threads don't count).
    #[test]
    fn barrier_released_when_nonparticipants_exit() {
        let waits = ProgramBuilder::new().barrier().build();
        let computes_then_exits = ProgramBuilder::new()
            .repeat(64, |b| {
                b.fma(Reg(0), Reg(0), Reg(1), Reg(2));
            })
            .build(); // no barrier: exits directly
        let kernel = KernelBuilder::new("bar-exit")
            .blocks(1)
            .regs_per_thread(8)
            .per_warp_programs(vec![waits.clone(), computes_then_exits, waits.clone(), waits])
            .build();
        let cfg = GpuConfig::volta_v100().with_sms(1);
        let stats =
            simulate_kernel(&cfg, &Policies::hardware_baseline(), kernel).expect("no deadlock");
        assert_eq!(stats.instructions, 3 + 64 + 4); // 3 barriers + 64 fma + 4 exits
    }

    /// Shared-memory capacity bounds resident blocks.
    #[test]
    fn shared_memory_limits_residency() {
        let p = ProgramBuilder::new()
            .repeat(128, |b| {
                b.load_shared(Reg(8), Reg(0), 1);
            })
            .barrier()
            .build();
        let mk = |bytes: u32| {
            KernelBuilder::new("smem")
                .blocks(8)
                .warps_per_block(4)
                .regs_per_thread(16)
                .shared_mem_bytes(bytes)
                .uniform_program(p.clone())
                .build()
        };
        let cfg = GpuConfig::volta_v100().with_sms(1);
        let pol = Policies::hardware_baseline();
        let small = simulate_kernel(&cfg, &pol, mk(4 * 1024)).unwrap();
        let huge = simulate_kernel(&cfg, &pol, mk(96 * 1024)).unwrap(); // 1 block at a time
        assert!(
            huge.cycles > small.cycles,
            "serialized blocks must be slower: {} vs {}",
            huge.cycles,
            small.cycles
        );
    }
}

#[cfg(test)]
mod option_tests {
    //! Tests of the optional engine features: dual-issue, warp-level
    //! deallocation, idealized work stealing, RF write-port contention, and
    //! MSHR merging.

    use super::*;
    use subcore_isa::{fma_kernel, KernelBuilder, ProgramBuilder, Reg};

    fn unbalanced_kernel(blocks: u32, fmas: u32) -> subcore_isa::Kernel {
        let long = ProgramBuilder::new()
            .repeat(fmas, |b| {
                b.fma(Reg(0), Reg(0), Reg(1), Reg(2));
                b.fma(Reg(3), Reg(3), Reg(1), Reg(2));
                b.fma(Reg(4), Reg(4), Reg(1), Reg(2));
                b.fma(Reg(5), Reg(5), Reg(1), Reg(2));
            })
            .barrier()
            .build();
        let empty = ProgramBuilder::new().barrier().build();
        let programs =
            (0..32u32).map(|w| if w % 4 == 0 { long.clone() } else { empty.clone() }).collect();
        KernelBuilder::new("unbal")
            .blocks(blocks)
            .regs_per_thread(8)
            .per_warp_programs(programs)
            .build()
    }

    #[test]
    fn dual_issue_helps_single_scheduler_hotspots() {
        // All compute pinned to sub-core 0: its 1-wide issue is the
        // bottleneck; Kepler-style dual issue relieves it.
        let mut cfg = GpuConfig::volta_v100().with_sms(1);
        let single =
            simulate_kernel(&cfg, &Policies::hardware_baseline(), unbalanced_kernel(2, 256))
                .unwrap();
        cfg.issue_width = 2;
        let dual = simulate_kernel(&cfg, &Policies::hardware_baseline(), unbalanced_kernel(2, 256))
            .unwrap();
        assert!(
            dual.cycles < single.cycles,
            "dual issue should relieve the hot scheduler: {} vs {}",
            dual.cycles,
            single.cycles
        );
    }

    #[test]
    fn work_stealing_recovers_imbalance() {
        let mut cfg = GpuConfig::volta_v100().with_sms(1);
        let base = simulate_kernel(&cfg, &Policies::hardware_baseline(), unbalanced_kernel(2, 256))
            .unwrap();
        cfg.work_stealing = true;
        let steal =
            simulate_kernel(&cfg, &Policies::hardware_baseline(), unbalanced_kernel(2, 256))
                .unwrap();
        assert_eq!(base.instructions, steal.instructions, "work conserved");
        assert!(
            (steal.cycles as f64) < 0.6 * base.cycles as f64,
            "idle sub-cores should steal the pinned work: {} vs {}",
            steal.cycles,
            base.cycles
        );
    }

    #[test]
    fn warp_level_dealloc_improves_occupancy_turnover() {
        // Long and short warps in one block: block-granularity release
        // strands the short warps' slots; warp-level release reuses them.
        let mut cfg = GpuConfig::volta_v100().with_sms(1);
        let k = unbalanced_kernel(8, 128);
        let block_level = simulate_kernel(&cfg, &Policies::hardware_baseline(), k.clone()).unwrap();
        cfg.warp_level_dealloc = true;
        let warp_level = simulate_kernel(&cfg, &Policies::hardware_baseline(), k).unwrap();
        assert_eq!(block_level.instructions, warp_level.instructions);
        // Freed slots admit more blocks: occupancy turnover must not hurt,
        // and the paper's point stands — it does NOT fix the sub-core
        // imbalance (the long warps still all sit on sub-core 0).
        assert!(warp_level.cycles <= block_level.cycles);
        let cv = warp_level.issue_cv().expect("partitioned");
        assert!(cv > 0.5, "imbalance persists under warp-level dealloc: cv {cv:.2}");
    }

    #[test]
    fn write_port_contention_is_bounded() {
        // A mixed body avoids the pure-FMA dependence-chain resonance in
        // which delaying a grant by one cycle happens to *align* with the
        // FMA unit's initiation interval; even so, contention effects on
        // periodic code can cut either way, so this asserts a sane band
        // plus exact work conservation rather than strict monotonicity.
        let p = ProgramBuilder::new()
            .repeat(128, |b| {
                b.fma(Reg(8), Reg(0), Reg(2), Reg(4));
                b.iadd(Reg(9), Reg(1), Reg(3));
                b.fma(Reg(10), Reg(2), Reg(4), Reg(0));
                b.iadd(Reg(11), Reg(3), Reg(5));
                b.mufu(Reg(12), Reg(0));
            })
            .barrier()
            .build();
        let k = KernelBuilder::new("wp")
            .blocks(8)
            .warps_per_block(8)
            .regs_per_thread(16)
            .uniform_program(p)
            .build();
        let mut cfg = GpuConfig::volta_v100().with_sms(1);
        let free = simulate_kernel(&cfg, &Policies::hardware_baseline(), k.clone()).unwrap();
        cfg.rf_write_port_contention = true;
        let contended = simulate_kernel(&cfg, &Policies::hardware_baseline(), k).unwrap();
        assert_eq!(free.instructions, contended.instructions);
        let ratio = contended.cycles as f64 / free.cycles as f64;
        assert!(
            (0.9..2.0).contains(&ratio),
            "write contention out of band: {} vs {} ({ratio:.2})",
            contended.cycles,
            free.cycles
        );
    }

    #[test]
    fn mshr_merging_reduces_memory_time() {
        // All warps of a block read the same streaming lines: without
        // MSHRs every warp pays the full miss; with merging they share it.
        let p = ProgramBuilder::new()
            .repeat(64, |b| {
                b.load_global(Reg(8), Reg(0), 0, 128);
                b.fma(Reg(9), Reg(1), Reg(2), Reg(3));
            })
            .barrier()
            .build();
        let mk = || {
            KernelBuilder::new("mshr")
                .blocks(4)
                .warps_per_block(8)
                .regs_per_thread(16)
                .uniform_program(p.clone())
                .build()
        };
        let mut cfg = GpuConfig::volta_v100().with_sms(1);
        let without = simulate_kernel(&cfg, &Policies::hardware_baseline(), mk()).unwrap();
        cfg.mshr_merging = true;
        let with = simulate_kernel(&cfg, &Policies::hardware_baseline(), mk()).unwrap();
        assert_eq!(without.mem.mshr_merges, 0);
        // Distinct warps stream distinct lanes, so merges come from a
        // warp's own re-references; the run must never be slower.
        assert!(with.cycles <= without.cycles);
    }

    #[test]
    fn occupancy_and_pipeline_stats_populated() {
        let cfg = GpuConfig::volta_v100().with_sms(1);
        let stats =
            simulate_kernel(&cfg, &Policies::hardware_baseline(), fma_kernel("st", 4, 8, 64))
                .unwrap();
        let occ = stats.avg_occupancy();
        assert!(occ > 0.0 && occ <= 64.0, "occupancy {occ}");
        let fma_idx = subcore_isa::Pipeline::Fma.index();
        assert!(stats.pipe_dispatched[fma_idx] > 0, "FMA pipeline used");
        assert_eq!(
            stats.pipe_dispatched.iter().sum::<u64>() as u64
                + stats.issued_per_scheduler.iter().flatten().sum::<u64>()
                - stats.instructions,
            stats.pipe_dispatched.iter().sum::<u64>(),
            "dispatch accounting is self-consistent"
        );
    }
}
