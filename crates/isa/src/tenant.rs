//! Tenant workload specification for multi-tenant (MIG-style) spatial
//! partitioning: an [`App`] plus its arrival offset and optional deadline.
//!
//! A *tenant* is one application stream submitted to a shared GPU. The
//! engine's multi-tenant dispatcher runs several tenants concurrently,
//! each confined to an SM partition; this crate only describes *what* a
//! tenant wants (work, arrival time, QoS deadline), never *where* it runs
//! — partition placement is a scheduling-policy concern layered on top.

use crate::app::App;

/// One tenant: an application, the cycle it arrives at, and an optional
/// completion deadline (absolute cycle, QoS contract).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TenantSpec {
    app: App,
    arrival: u64,
    deadline: Option<u64>,
}

impl TenantSpec {
    /// A tenant arriving at cycle 0 with no deadline.
    pub fn new(app: App) -> Self {
        TenantSpec { app, arrival: 0, deadline: None }
    }

    /// Sets the arrival cycle: the tenant submits no work before it.
    pub fn with_arrival(mut self, cycle: u64) -> Self {
        self.arrival = cycle;
        self
    }

    /// Sets the absolute-cycle deadline the tenant should finish by.
    pub fn with_deadline(mut self, cycle: u64) -> Self {
        self.deadline = Some(cycle);
        self
    }

    /// The tenant's application.
    pub fn app(&self) -> &App {
        &self.app
    }

    /// The tenant's name (its application's name).
    pub fn name(&self) -> &str {
        self.app.name()
    }

    /// The cycle the tenant arrives at.
    pub fn arrival(&self) -> u64 {
        self.arrival
    }

    /// The absolute-cycle deadline, if the tenant has one.
    pub fn deadline(&self) -> Option<u64> {
        self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::Suite;
    use crate::kernel::fma_kernel;

    #[test]
    fn builder_style_accessors_round_trip() {
        let app = App::new("t", Suite::Micro, vec![fma_kernel("k", 1, 8, 4)]);
        let t = TenantSpec::new(app.clone());
        assert_eq!(t.arrival(), 0);
        assert_eq!(t.deadline(), None);
        assert_eq!(t.name(), "t");
        let t = t.with_arrival(100).with_deadline(5000);
        assert_eq!(t.arrival(), 100);
        assert_eq!(t.deadline(), Some(5000));
        assert_eq!(t.app(), &app);
    }
}
