//! Fig. 13: area and power cost of scaling collector units versus the RBA
//! design, normalized to the 2-CU baseline. All designs include the warp
//! issue scheduler, operand collector, and two register-file banks.
//!
//! Paper headlines (45 nm Genus + OpenRAM): 4 CUs → +27 % area / +60 %
//! power; RBA → ≈ +1 % of each.

use crate::report::Table;
use subcore_power::CostModel;

/// Runs the (analytic) experiment.
pub fn run() -> Table {
    let model = CostModel::calibrated_45nm();
    let mut table = Table::new(
        "fig13_area_power",
        "Sub-core issue/operand-read path cost, normalized to 2 CUs",
        vec!["area".into(), "power".into()],
    );
    for cus in [2u32, 3, 4, 8, 16] {
        let c = model.normalized_cost(cus, 2, false);
        table.push_row(format!("{cus}cu"), vec![c.area, c.power]);
    }
    let rba = model.normalized_cost(2, 2, true);
    table.push_row("rba", vec![rba.area, rba.power]);
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn headline_numbers() {
        let t = super::run();
        let area4 = t.get("4cu", "area").unwrap();
        let power4 = t.get("4cu", "power").unwrap();
        assert!((area4 - 1.27).abs() < 0.04, "{area4}");
        assert!((power4 - 1.60).abs() < 0.06, "{power4}");
        assert!(t.get("rba", "area").unwrap() < 1.02);
        assert!(t.get("rba", "power").unwrap() < 1.02);
    }
}
