//! Named design points evaluated in the paper, each mapping to a
//! `(GpuConfig, Policies)` pair.

use crate::{RbaSelector, ShuffleAssigner, ShuffleMode, SkewedRoundRobinAssigner};
use subcore_engine::{Connectivity, GpuConfig, GtoSelector, Policies, RoundRobinAssigner};

/// A design point from the paper's evaluation (Figs. 9–18).
///
/// Every design is expressed as a transformation of a baseline
/// [`GpuConfig`] plus a [`Policies`] pair, so experiments sweep designs
/// uniformly:
///
/// ```
/// use subcore_engine::{simulate_kernel, GpuConfig};
/// use subcore_isa::fma_kernel;
/// use subcore_sched::Design;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let base = GpuConfig::volta_v100().with_sms(1);
/// for design in Design::FIGURE9 {
///     let stats = simulate_kernel(&design.config(&base), &design.policies(),
///                                 fma_kernel("k", 4, 8, 32))?;
///     println!("{:12} {:>8} cycles", design.label(), stats.cycles);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Design {
    /// GTO warp scheduling + round-robin assignment on the partitioned SM —
    /// the normalization baseline of every figure.
    Baseline,
    /// Register-Bank-Aware warp scheduling (+ round-robin assignment).
    Rba,
    /// GTO + Skewed-Round-Robin hashed assignment.
    Srr,
    /// GTO + Random-Shuffle hashed assignment (fresh permutation stream).
    Shuffle,
    /// GTO + Random-Shuffle through a fixed hash table with the given
    /// number of entries — the literal Fig. 7 hardware (§IV-B3 compares
    /// 4 vs. 16 entries).
    ShuffleTable(u32),
    /// The combined design: RBA scheduling + Shuffle assignment.
    ShuffleRba,
    /// RBA scheduling + SRR assignment.
    SrrRba,
    /// The hypothetical fully-connected monolithic SM (Fig. 1).
    FullyConnected,
    /// RBA scheduling on top of the fully-connected SM (Fig. 11).
    FcRba,
    /// Baseline with `n` collector units per sub-core (Fig. 12 sweeps
    /// 4/8/16; 2 is the baseline).
    CuScaling(u32),
    /// The register bank-stealing baseline of Jing et al. \[36\] (Fig. 10).
    BankStealing,
    /// RBA with the given score-update latency in cycles (§VI-B4).
    RbaLatency(u32),
    /// RBA with the given number of register banks per sub-core (§VI-B5).
    RbaBanks(u32),
    /// GTO baseline with the given number of register banks per sub-core
    /// (the normalization baseline of the §VI-B5 bank-scaling study).
    Banks(u32),
}

impl Design {
    /// The designs plotted in Fig. 9 (all applications).
    pub const FIGURE9: [Design; 4] =
        [Design::Rba, Design::Shuffle, Design::ShuffleRba, Design::FullyConnected];

    /// The designs plotted in Fig. 10 (partitioning-sensitive subset).
    pub const FIGURE10: [Design; 7] = [
        Design::Rba,
        Design::Srr,
        Design::Shuffle,
        Design::ShuffleRba,
        Design::FullyConnected,
        Design::CuScaling(4),
        Design::BankStealing,
    ];

    /// The designs plotted in Figs. 15/16 (TPC-H).
    pub const TPCH_SET: [Design; 5] =
        [Design::Rba, Design::Srr, Design::Shuffle, Design::ShuffleRba, Design::FullyConnected];

    /// Derives this design's configuration from a baseline config.
    pub fn config(&self, base: &GpuConfig) -> GpuConfig {
        let mut cfg = base.clone();
        match *self {
            Design::FullyConnected | Design::FcRba => {
                cfg.connectivity = Connectivity::FullyConnected;
            }
            Design::CuScaling(n) => cfg.cus_per_subcore = n,
            Design::BankStealing => cfg.bank_stealing = true,
            Design::RbaLatency(l) => cfg.score_update_latency = l,
            Design::RbaBanks(b) | Design::Banks(b) => cfg.rf_banks_per_subcore = b,
            _ => {}
        }
        cfg
    }

    /// Builds this design's scheduling policies.
    pub fn policies(&self) -> Policies {
        let rba = matches!(
            self,
            Design::Rba
                | Design::ShuffleRba
                | Design::SrrRba
                | Design::FcRba
                | Design::RbaLatency(_)
                | Design::RbaBanks(_)
        );
        let selector: Box<subcore_engine::SelectorFactory> = if rba {
            Box::new(|| Box::new(RbaSelector::new()))
        } else {
            Box::new(|| Box::new(GtoSelector::new()))
        };
        let assigner: Box<subcore_engine::AssignerFactory> = match self {
            Design::Srr | Design::SrrRba => Box::new(|_| Box::new(SkewedRoundRobinAssigner::new())),
            Design::Shuffle | Design::ShuffleRba => {
                Box::new(|sm| Box::new(ShuffleAssigner::with_seed(0xA11CE + u64::from(sm))))
            }
            Design::ShuffleTable(entries) => {
                let entries = *entries;
                Box::new(move |sm| {
                    Box::new(ShuffleAssigner::new(
                        ShuffleMode::Table { entries },
                        0xA11CE + u64::from(sm),
                    ))
                })
            }
            _ => Box::new(|_| Box::new(RoundRobinAssigner::new())),
        };
        Policies::new(selector, assigner)
    }

    /// Short label used in report rows (matches the paper's legends).
    pub fn label(&self) -> String {
        match *self {
            Design::Baseline => "baseline".into(),
            Design::Rba => "rba".into(),
            Design::Srr => "srr".into(),
            Design::Shuffle => "shuffle".into(),
            Design::ShuffleTable(e) => format!("shuffle-table{e}"),
            Design::ShuffleRba => "shuffle+rba".into(),
            Design::SrrRba => "srr+rba".into(),
            Design::FullyConnected => "fully-connected".into(),
            Design::FcRba => "fc+rba".into(),
            Design::CuScaling(n) => format!("{n}cu"),
            Design::BankStealing => "bank-stealing".into(),
            Design::RbaLatency(l) => format!("rba-lat{l}"),
            Design::RbaBanks(b) => format!("rba-{b}banks"),
            Design::Banks(b) => format!("gto-{b}banks"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_transformations() {
        let base = GpuConfig::volta_v100();
        assert_eq!(Design::Baseline.config(&base), base);
        assert_eq!(
            Design::FullyConnected.config(&base).connectivity,
            Connectivity::FullyConnected
        );
        assert_eq!(Design::CuScaling(8).config(&base).cus_per_subcore, 8);
        assert!(Design::BankStealing.config(&base).bank_stealing);
        assert_eq!(Design::RbaLatency(20).config(&base).score_update_latency, 20);
        assert_eq!(Design::RbaBanks(4).config(&base).rf_banks_per_subcore, 4);
    }

    #[test]
    fn policies_pick_the_right_selector() {
        assert_eq!((Design::Rba.policies().selector)().name(), "rba");
        assert_eq!((Design::Baseline.policies().selector)().name(), "gto");
        assert_eq!((Design::ShuffleRba.policies().selector)().name(), "rba");
        assert_eq!((Design::Shuffle.policies().selector)().name(), "gto");
        assert_eq!((Design::FcRba.policies().selector)().name(), "rba");
    }

    #[test]
    fn policies_pick_the_right_assigner() {
        assert_eq!((Design::Srr.policies().assigner)(0).name(), "srr");
        assert_eq!((Design::Shuffle.policies().assigner)(0).name(), "shuffle");
        assert_eq!((Design::Rba.policies().assigner)(0).name(), "rr");
        assert_eq!((Design::FullyConnected.policies().assigner)(0).name(), "rr");
    }

    #[test]
    fn shuffle_seeds_differ_per_sm() {
        let p = Design::Shuffle.policies();
        let mut a = (p.assigner)(0);
        let mut b = (p.assigner)(1);
        // Over 64 warps, distinct seeds almost surely produce distinct plans.
        assert_ne!(a.assign_block(64, 4), b.assign_block(64, 4));
    }

    #[test]
    fn labels_are_unique_across_paper_sets() {
        let mut labels: Vec<String> = Design::FIGURE10.iter().map(|d| d.label()).collect();
        labels.push(Design::Baseline.label());
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }
}
