//! Per-warp execution state, stored as a structure-of-arrays.
//!
//! The per-cycle hot loops (candidate scan, fetch, writeback) touch a
//! handful of small fields for every resident warp. Keeping each field in
//! its own dense array indexed by warp slot — instead of an
//! array-of-structs of fat `WarpContext`s — means a scan walks contiguous
//! memory and the instruction buffers live in one flat arena with zero
//! per-cycle heap traffic.

use crate::scoreboard::Scoreboard;
use subcore_isa::{Cursor, Instruction, OpClass};

/// A decoded instruction waiting in a warp's instruction buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct DecodedInstr {
    pub instr: Instruction,
    /// Dynamic index within the warp's program (drives streaming memory
    /// patterns).
    pub dyn_idx: u64,
}

impl DecodedInstr {
    /// Placeholder value for unoccupied arena slots (never issued).
    pub(crate) fn filler() -> Self {
        DecodedInstr { instr: Instruction::new(OpClass::Exit, None, &[]), dyn_idx: 0 }
    }
}

/// Lifecycle state of a warp slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotState {
    /// No warp resident in this slot.
    Vacant,
    /// Eligible to fetch and issue.
    Ready,
    /// Issued a barrier and waiting for the rest of its block.
    AtBarrier,
    /// Issued `exit`. The warp keeps its slot and registers until its whole
    /// block completes — the block-granularity deallocation that produces
    /// the paper's sub-core imbalance stalls.
    Exited,
}

/// All warp state of one SM, split into parallel arrays indexed by warp
/// slot.
///
/// Hot arrays come first (everything the per-cycle candidate scan and
/// fetch stage touch: lifecycle, stall gate, scoreboard, age, bank-swizzle
/// index, domain, outstanding count, trace cursor), with the colder
/// block-lifecycle and statistics arrays after. The instruction buffers
/// are one flat ring arena of `slots × depth` entries with a per-slot
/// head/len pair, allocated once at SM construction: insert, fetch, issue,
/// and exit never touch the heap.
#[derive(Debug)]
pub(crate) struct WarpTable {
    /// Lifecycle state (checked first by every scan).
    pub state: Vec<SlotState>,
    /// The warp may not issue before this cycle (used by the idealized
    /// work-stealing option to charge a register-migration penalty).
    pub stall_until: Vec<u64>,
    /// Pending register writes.
    pub scoreboard: Vec<Scoreboard>,
    /// Allocation age: smaller = assigned earlier (GTO "oldest").
    pub age: Vec<u64>,
    /// Index within the sub-core's scheduler table at assignment time; the
    /// register-file bank swizzle is derived from this (register banks are
    /// sub-core-local structures).
    pub local_index: Vec<u32>,
    /// Scheduler domain (sub-core) the warp is pinned to.
    pub domain: Vec<u32>,
    /// Instructions issued but not yet completed (exit waits for zero so no
    /// completion can outlive the warp's block).
    pub outstanding: Vec<u32>,
    /// Position in the warp's trace (`None` while vacant).
    pub cursor: Vec<Option<Cursor>>,
    // ---- cold: block lifecycle and statistics ---------------------------
    /// Index into the SM's resident-block table.
    pub block_slot: Vec<usize>,
    /// Globally unique id used to derive independent memory streams.
    pub stream_id: Vec<u64>,
    /// Dynamic instructions issued by this warp (stat).
    pub issued: Vec<u64>,
    // ---- instruction-buffer arena ---------------------------------------
    /// Ring capacity of each per-slot instruction buffer.
    depth: usize,
    /// Flat arena: slot `s`'s ring occupies `ibuf[s*depth .. (s+1)*depth]`.
    ibuf: Vec<DecodedInstr>,
    /// Ring head (index of the front entry) per slot.
    ibuf_head: Vec<u32>,
    /// Ring occupancy per slot.
    ibuf_len: Vec<u32>,
}

impl WarpTable {
    /// Creates a table for `slots` warp slots with `depth`-deep instruction
    /// buffers. All storage is allocated here, once.
    pub fn new(slots: usize, depth: usize) -> Self {
        WarpTable {
            state: vec![SlotState::Vacant; slots],
            stall_until: vec![0; slots],
            scoreboard: vec![Scoreboard::default(); slots],
            age: vec![0; slots],
            local_index: vec![0; slots],
            domain: vec![0; slots],
            outstanding: vec![0; slots],
            cursor: (0..slots).map(|_| None).collect(),
            block_slot: vec![0; slots],
            stream_id: vec![0; slots],
            issued: vec![0; slots],
            depth,
            ibuf: vec![DecodedInstr::filler(); slots * depth],
            ibuf_head: vec![0; slots],
            ibuf_len: vec![0; slots],
        }
    }

    /// Number of warp slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// Installs a fresh `Ready` warp into a vacant slot.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &mut self,
        slot: usize,
        age: u64,
        local_index: u32,
        domain: u32,
        cursor: Cursor,
        block_slot: usize,
        stream_id: u64,
    ) {
        debug_assert_eq!(self.state[slot], SlotState::Vacant, "insert into occupied slot");
        self.state[slot] = SlotState::Ready;
        self.stall_until[slot] = 0;
        self.scoreboard[slot] = Scoreboard::default();
        self.age[slot] = age;
        self.local_index[slot] = local_index;
        self.domain[slot] = domain;
        self.outstanding[slot] = 0;
        self.cursor[slot] = Some(cursor);
        self.block_slot[slot] = block_slot;
        self.stream_id[slot] = stream_id;
        self.issued[slot] = 0;
        self.ibuf_head[slot] = 0;
        self.ibuf_len[slot] = 0;
    }

    /// Vacates a slot (block completion or warp-level dealloc). The arena
    /// storage stays in place for the next resident.
    pub fn remove(&mut self, slot: usize) {
        debug_assert_ne!(self.state[slot], SlotState::Vacant, "double free of warp slot");
        self.state[slot] = SlotState::Vacant;
        self.cursor[slot] = None;
        self.ibuf_len[slot] = 0;
    }

    /// True if the warp can appear in the issue-candidate list at `now`.
    #[inline]
    pub fn issuable(&self, slot: usize, now: u64) -> bool {
        self.state[slot] == SlotState::Ready
            && self.ibuf_len[slot] > 0
            && now >= self.stall_until[slot]
    }

    /// Occupancy of a slot's instruction buffer.
    #[inline]
    pub fn ibuf_len(&self, slot: usize) -> usize {
        self.ibuf_len[slot] as usize
    }

    /// Copy of the front (oldest) buffered instruction, if any.
    #[inline]
    pub fn ibuf_front(&self, slot: usize) -> Option<DecodedInstr> {
        (self.ibuf_len[slot] > 0)
            .then(|| self.ibuf[slot * self.depth + self.ibuf_head[slot] as usize])
    }

    /// Pops the front buffered instruction. Panics in debug builds if the
    /// buffer is empty (callers check via [`Self::ibuf_front`] first).
    #[inline]
    pub fn ibuf_pop(&mut self, slot: usize) -> DecodedInstr {
        debug_assert!(self.ibuf_len[slot] > 0, "pop from empty ibuffer");
        let head = self.ibuf_head[slot] as usize;
        let d = self.ibuf[slot * self.depth + head];
        self.ibuf_head[slot] = ((head + 1) % self.depth) as u32;
        self.ibuf_len[slot] -= 1;
        d
    }

    /// Appends a decoded instruction to the back of a slot's buffer.
    #[inline]
    pub fn ibuf_push(&mut self, slot: usize, d: DecodedInstr) {
        let len = self.ibuf_len[slot] as usize;
        debug_assert!(len < self.depth, "ibuffer overflow");
        let pos = (self.ibuf_head[slot] as usize + len) % self.depth;
        self.ibuf[slot * self.depth + pos] = d;
        self.ibuf_len[slot] += 1;
    }

    /// The `i`-th buffered instruction (0 = front), for equivalence tests.
    #[cfg(test)]
    pub fn ibuf_nth(&self, slot: usize, i: usize) -> DecodedInstr {
        debug_assert!(i < self.ibuf_len[slot] as usize);
        let pos = (self.ibuf_head[slot] as usize + i) % self.depth;
        self.ibuf[slot * self.depth + pos]
    }
}

// ---------------------------------------------------------------------------
// The retired array-of-structs layout, kept as the oracle for the
// generative equivalence test below: every mutation the engine performs on
// the SoA table is mirrored onto this reference layout and the
// scheduling-relevant state compared field for field.

/// Lifecycle state of a resident warp (reference layout).
#[cfg(test)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WarpRun {
    Ready,
    AtBarrier,
    Exited,
}

/// All state for one warp resident on an SM (reference layout).
#[cfg(test)]
#[derive(Debug)]
pub(crate) struct WarpContext {
    pub run: WarpRun,
    pub stall_until: u64,
    pub ibuffer: std::collections::VecDeque<DecodedInstr>,
    pub scoreboard: Scoreboard,
    pub age: u64,
    pub local_index: u32,
    pub domain: u32,
    pub cursor: Cursor,
    pub outstanding: u32,
    pub block_slot: usize,
    pub stream_id: u64,
    pub issued: u64,
}

#[cfg(test)]
impl WarpContext {
    /// True if the warp can appear in the issue-candidate list at `now`.
    pub fn issuable(&self, now: u64) -> bool {
        self.run == WarpRun::Ready && !self.ibuffer.is_empty() && now >= self.stall_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use subcore_isa::{ProgramBuilder, Reg};

    const SLOTS: usize = 8;
    const DEPTH: usize = 4;

    /// One randomly generated mutation of the warp state, applied
    /// identically to the SoA table and the AoS oracle.
    #[derive(Debug, Clone)]
    enum Op {
        Insert { slot_hint: u8, domain: u8, block_slot: u8 },
        Remove { slot_hint: u8 },
        SetState { slot_hint: u8, which: u8 },
        PushIbuf { slot_hint: u8 },
        PopIbuf { slot_hint: u8 },
        SetScore { slot_hint: u8, reg: u8 },
        ClearScore { slot_hint: u8, reg: u8 },
        Stall { slot_hint: u8, until: u16 },
        Outstanding { slot_hint: u8, up: bool },
        BumpIssued { slot_hint: u8 },
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u8>(), 0u8..4, 0u8..4).prop_map(|(s, d, b)| Op::Insert {
                slot_hint: s,
                domain: d,
                block_slot: b
            }),
            any::<u8>().prop_map(|s| Op::Remove { slot_hint: s }),
            (any::<u8>(), 0u8..3).prop_map(|(s, w)| Op::SetState { slot_hint: s, which: w }),
            any::<u8>().prop_map(|s| Op::PushIbuf { slot_hint: s }),
            any::<u8>().prop_map(|s| Op::PopIbuf { slot_hint: s }),
            (any::<u8>(), 0u8..32).prop_map(|(s, r)| Op::SetScore { slot_hint: s, reg: r }),
            (any::<u8>(), 0u8..32).prop_map(|(s, r)| Op::ClearScore { slot_hint: s, reg: r }),
            (any::<u8>(), any::<u16>()).prop_map(|(s, u)| Op::Stall { slot_hint: s, until: u }),
            (any::<u8>(), any::<bool>()).prop_map(|(s, up)| Op::Outstanding { slot_hint: s, up }),
            any::<u8>().prop_map(|s| Op::BumpIssued { slot_hint: s }),
        ]
    }

    /// A small program with enough instructions that pushes rarely run the
    /// cursor dry.
    fn test_cursor() -> Cursor {
        let mut b = ProgramBuilder::new();
        b.repeat(64, |b| {
            b.fma(Reg(0), Reg(1), Reg(2), Reg(3));
        });
        b.build().cursor()
    }

    /// First slot at or after the hint (wrapping) whose occupancy matches.
    fn pick_slot(oracle: &[Option<WarpContext>], hint: u8, occupied: bool) -> Option<usize> {
        (0..SLOTS).map(|i| (hint as usize + i) % SLOTS).find(|&s| oracle[s].is_some() == occupied)
    }

    fn assert_equivalent(table: &WarpTable, oracle: &[Option<WarpContext>], now: u64) {
        for (slot, ctx) in oracle.iter().enumerate() {
            let Some(w) = ctx else {
                assert_eq!(table.state[slot], SlotState::Vacant, "slot {slot} vacancy");
                continue;
            };
            let state = match w.run {
                WarpRun::Ready => SlotState::Ready,
                WarpRun::AtBarrier => SlotState::AtBarrier,
                WarpRun::Exited => SlotState::Exited,
            };
            assert_eq!(table.state[slot], state, "slot {slot} run state");
            assert_eq!(table.stall_until[slot], w.stall_until, "slot {slot} stall_until");
            assert_eq!(table.scoreboard[slot], w.scoreboard, "slot {slot} scoreboard");
            assert_eq!(table.age[slot], w.age, "slot {slot} age");
            assert_eq!(table.local_index[slot], w.local_index, "slot {slot} local_index");
            assert_eq!(table.domain[slot], w.domain, "slot {slot} domain");
            assert_eq!(table.outstanding[slot], w.outstanding, "slot {slot} outstanding");
            assert_eq!(table.block_slot[slot], w.block_slot, "slot {slot} block_slot");
            assert_eq!(table.stream_id[slot], w.stream_id, "slot {slot} stream_id");
            assert_eq!(table.issued[slot], w.issued, "slot {slot} issued");
            assert_eq!(table.ibuf_len(slot), w.ibuffer.len(), "slot {slot} ibuf len");
            for (i, d) in w.ibuffer.iter().enumerate() {
                assert_eq!(table.ibuf_nth(slot, i), *d, "slot {slot} ibuf[{i}]");
            }
            assert_eq!(table.ibuf_front(slot), w.ibuffer.front().copied(), "slot {slot} front");
            assert_eq!(table.issuable(slot, now), w.issuable(now), "slot {slot} issuable@{now}");
        }
    }

    proptest! {
        /// The SoA table round-trips against the retired AoS layout: after
        /// any sequence of random mutation steps, every scheduling-relevant
        /// field matches the oracle, slot for slot.
        #[test]
        fn soa_matches_aos_oracle(ops in proptest::prop::collection::vec(arb_op(), 1..120)) {
            let mut table = WarpTable::new(SLOTS, DEPTH);
            let mut oracle: Vec<Option<WarpContext>> = (0..SLOTS).map(|_| None).collect();
            let mut age: u64 = 0;
            let mut stream: u64 = 0;

            for op in ops {
                match op {
                    Op::Insert { slot_hint, domain, block_slot } => {
                        let Some(slot) = pick_slot(&oracle, slot_hint, false) else { continue };
                        let local = slot_hint as u32 % 8;
                        table.insert(
                            slot,
                            age,
                            local,
                            u32::from(domain),
                            test_cursor(),
                            block_slot as usize,
                            stream,
                        );
                        oracle[slot] = Some(WarpContext {
                            run: WarpRun::Ready,
                            stall_until: 0,
                            ibuffer: std::collections::VecDeque::new(),
                            scoreboard: Scoreboard::default(),
                            age,
                            local_index: local,
                            domain: u32::from(domain),
                            cursor: test_cursor(),
                            outstanding: 0,
                            block_slot: block_slot as usize,
                            stream_id: stream,
                            issued: 0,
                        });
                        age += 1;
                        stream += 1;
                    }
                    Op::Remove { slot_hint } => {
                        let Some(slot) = pick_slot(&oracle, slot_hint, true) else { continue };
                        table.remove(slot);
                        oracle[slot] = None;
                    }
                    Op::SetState { slot_hint, which } => {
                        let Some(slot) = pick_slot(&oracle, slot_hint, true) else { continue };
                        let (s, r) = match which {
                            0 => (SlotState::Ready, WarpRun::Ready),
                            1 => (SlotState::AtBarrier, WarpRun::AtBarrier),
                            _ => (SlotState::Exited, WarpRun::Exited),
                        };
                        table.state[slot] = s;
                        oracle[slot].as_mut().unwrap().run = r;
                    }
                    Op::PushIbuf { slot_hint } => {
                        let Some(slot) = pick_slot(&oracle, slot_hint, true) else { continue };
                        if table.ibuf_len(slot) >= DEPTH {
                            continue;
                        }
                        let from_table = table.cursor[slot]
                            .as_mut()
                            .expect("occupied slots hold a cursor")
                            .next_instruction();
                        let w = oracle[slot].as_mut().unwrap();
                        let from_oracle = w.cursor.next_instruction();
                        prop_assert_eq!(from_table, from_oracle, "cursors advanced in lockstep");
                        if let Some((instr, dyn_idx)) = from_table {
                            let d = DecodedInstr { instr, dyn_idx };
                            table.ibuf_push(slot, d);
                            w.ibuffer.push_back(d);
                        }
                    }
                    Op::PopIbuf { slot_hint } => {
                        let Some(slot) = pick_slot(&oracle, slot_hint, true) else { continue };
                        if table.ibuf_len(slot) == 0 {
                            continue;
                        }
                        let a = table.ibuf_pop(slot);
                        let b = oracle[slot].as_mut().unwrap().ibuffer.pop_front().unwrap();
                        prop_assert_eq!(a, b, "popped instruction");
                    }
                    Op::SetScore { slot_hint, reg } => {
                        let Some(slot) = pick_slot(&oracle, slot_hint, true) else { continue };
                        table.scoreboard[slot].set(Reg(reg));
                        oracle[slot].as_mut().unwrap().scoreboard.set(Reg(reg));
                    }
                    Op::ClearScore { slot_hint, reg } => {
                        let Some(slot) = pick_slot(&oracle, slot_hint, true) else { continue };
                        table.scoreboard[slot].clear(Reg(reg));
                        oracle[slot].as_mut().unwrap().scoreboard.clear(Reg(reg));
                    }
                    Op::Stall { slot_hint, until } => {
                        let Some(slot) = pick_slot(&oracle, slot_hint, true) else { continue };
                        table.stall_until[slot] = u64::from(until);
                        oracle[slot].as_mut().unwrap().stall_until = u64::from(until);
                    }
                    Op::Outstanding { slot_hint, up } => {
                        let Some(slot) = pick_slot(&oracle, slot_hint, true) else { continue };
                        let w = oracle[slot].as_mut().unwrap();
                        if up {
                            table.outstanding[slot] += 1;
                            w.outstanding += 1;
                        } else if w.outstanding > 0 {
                            table.outstanding[slot] -= 1;
                            w.outstanding -= 1;
                        }
                    }
                    Op::BumpIssued { slot_hint } => {
                        let Some(slot) = pick_slot(&oracle, slot_hint, true) else { continue };
                        table.issued[slot] += 1;
                        oracle[slot].as_mut().unwrap().issued += 1;
                    }
                }
            }

            for now in [0u64, 1, 100, u64::from(u16::MAX)] {
                assert_equivalent(&table, &oracle, now);
            }
        }
    }

    #[test]
    fn ibuffer_ring_wraps() {
        let mut t = WarpTable::new(2, 3);
        t.insert(1, 0, 0, 0, test_cursor(), 0, 0);
        let d = |i: u64| DecodedInstr { dyn_idx: i, ..DecodedInstr::filler() };
        t.ibuf_push(1, d(0));
        t.ibuf_push(1, d(1));
        assert_eq!(t.ibuf_pop(1).dyn_idx, 0);
        t.ibuf_push(1, d(2));
        t.ibuf_push(1, d(3)); // wraps around the 3-deep ring
        assert_eq!(t.ibuf_len(1), 3);
        assert_eq!(t.ibuf_pop(1).dyn_idx, 1);
        assert_eq!(t.ibuf_pop(1).dyn_idx, 2);
        assert_eq!(t.ibuf_pop(1).dyn_idx, 3);
        assert_eq!(t.ibuf_len(1), 0);
    }

    #[test]
    fn insert_resets_all_slot_state() {
        let mut t = WarpTable::new(1, 2);
        t.insert(0, 7, 3, 1, test_cursor(), 2, 9);
        t.scoreboard[0].set(Reg(5));
        t.stall_until[0] = 44;
        t.outstanding[0] = 2;
        t.issued[0] = 3;
        t.ibuf_push(0, DecodedInstr::filler());
        t.outstanding[0] = 0;
        t.remove(0);
        t.insert(0, 8, 0, 0, test_cursor(), 0, 1);
        assert_eq!(t.state[0], SlotState::Ready);
        assert_eq!(t.stall_until[0], 0);
        assert!(t.scoreboard[0].is_empty());
        assert_eq!(t.age[0], 8);
        assert_eq!(t.outstanding[0], 0);
        assert_eq!(t.issued[0], 0);
        assert_eq!(t.ibuf_len(0), 0);
        assert!(!t.issuable(0, 0), "no buffered instruction yet");
    }
}
