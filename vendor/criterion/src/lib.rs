//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the benchmark-harness subset its benches use:
//! [`Criterion`] with `sample_size`/`warm_up_time`/`measurement_time`,
//! benchmark groups, [`Bencher::iter`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are intentionally simple: after a warm-up phase each sample
//! times a batch of iterations, and the harness reports the median, min,
//! and max per-iteration time (plus throughput when declared). There is no
//! outlier analysis, plotting, or baseline comparison.

use std::time::{Duration, Instant};

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many abstract elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// Top-level benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target total measurement duration per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { cri: self, name: name.into(), throughput: None }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let cfg = self.clone();
        run_benchmark(&cfg, id.as_ref(), None, f);
        self
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    cri: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        let cfg = self.cri.clone();
        run_benchmark(&cfg, &full, self.throughput, f);
        self
    }

    /// Ends the group (separator line in the output).
    pub fn finish(self) {
        eprintln!();
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher<'a> {
    cfg: &'a Criterion,
    /// Measured per-iteration times, one entry per sample.
    samples: Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `f`, storing one sample per configured `sample_size` slot.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses, counting
        // iterations so each sample batch is sized to ~1/sample_size of
        // the measurement budget.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.cfg.warm_up_time || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        let budget = self.cfg.measurement_time / self.cfg.sample_size as u32;
        let batch = if per_iter.is_zero() {
            1024
        } else {
            (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u32
        };
        self.samples.clear();
        for _ in 0..self.cfg.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples.push(t0.elapsed() / batch);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    cfg: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher { cfg, samples: Vec::new() };
    f(&mut b);
    let mut samples = b.samples;
    if samples.is_empty() {
        eprintln!("{id:<40} (no measurement — Bencher::iter never called)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let (min, max) = (samples[0], samples[samples.len() - 1]);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / median.as_secs_f64())
        }
        None => String::new(),
    };
    eprintln!("{id:<40} median {median:>10.3?}  (min {min:.3?}, max {max:.3?}){rate}");
}

/// Declares a benchmark group function, optionally with a custom
/// [`Criterion`] config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = ::std::default::Default::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(1));
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran > 0, "benchmark body must actually run");
    }

    #[test]
    fn builder_methods_chain() {
        let c = Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(2));
        assert_eq!(c.sample_size, 10);
    }
}
