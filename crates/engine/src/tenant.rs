//! Multi-tenant co-scheduler: the engine's main simulation loop,
//! generalized from "one app owns every SM" to N concurrent tenants, each
//! dispatching thread blocks onto an explicit [`SmSet`] partition.
//!
//! [`run_cases`] *is* the engine's only main loop — the single-tenant
//! [`crate::simulate_app`] path runs through it as the degenerate case of
//! one tenant owning every SM, with identical control flow:
//!
//! * one block-scheduler offer round per tenant per cycle (per-tenant
//!   round-robin cursor over the tenant's own SM set);
//! * all SMs tick in id order every cycle, whoever owns them;
//! * a tenant's kernel completes on the cycle its last block retires
//!   (block retirements are attributed by uid), which is exactly the
//!   `all_idle` drain condition of the old single-app loop;
//! * quiescent-span skip-ahead additionally clamps to the next pending
//!   tenant arrival, and a cycle that completes any kernel skips the
//!   skip-ahead and adaptive-window evaluation — just as the old loop's
//!   per-kernel `break` did.
//!
//! This makes single-tenant runs bit-exact with the pre-refactor engine
//! (the differential suite in `tests/tests/engine_modes.rs` enforces it)
//! while multi-tenant runs get per-tenant makespan, deadline slack, and
//! stall attribution in [`RunStats::tenants`].

use crate::config::{Connectivity, EngineMode, GpuConfig};
use crate::gpu::{check_schedulable, EngineReport};
use crate::policy::Policies;
use crate::sm::SmCore;
use crate::stats::{RunStats, SimError, StallBreakdown, TenantStats};
use subcore_isa::{App, TenantSpec};
use subcore_mem::MemSystem;
use subcore_trace::{TraceSink, Tracer, WindowAggregator};

/// A set of SM ids — the spatial partition one tenant dispatches onto.
///
/// Always sorted and deduplicated; two tenants may hold disjoint or
/// overlapping (shared) sets.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SmSet {
    sms: Vec<u32>,
}

impl SmSet {
    /// Builds a set from arbitrary SM ids (sorted and deduplicated).
    pub fn new(mut sms: Vec<u32>) -> Self {
        sms.sort_unstable();
        sms.dedup();
        SmSet { sms }
    }

    /// The contiguous set `start .. start + count`.
    pub fn contiguous(start: u32, count: u32) -> Self {
        SmSet { sms: (start..start + count).collect() }
    }

    /// Every SM of a `num_sms`-SM GPU.
    pub fn all(num_sms: u32) -> Self {
        SmSet::contiguous(0, num_sms)
    }

    /// The SM ids, ascending.
    pub fn ids(&self) -> &[u32] {
        &self.sms
    }

    /// Number of SMs in the set.
    pub fn len(&self) -> usize {
        self.sms.len()
    }

    /// Whether the set is empty (an unusable partition).
    pub fn is_empty(&self) -> bool {
        self.sms.is_empty()
    }

    /// Whether `sm` is in the set.
    pub fn contains(&self, sm: u32) -> bool {
        self.sms.binary_search(&sm).is_ok()
    }

    /// The largest SM id, if any.
    pub fn max_id(&self) -> Option<u32> {
        self.sms.last().copied()
    }

    /// Whether any SM is in both sets.
    pub fn overlaps(&self, other: &SmSet) -> bool {
        self.sms.iter().any(|&s| other.contains(s))
    }

    /// Compact range label, e.g. `0-3` or `0-1+4` (telemetry column).
    pub fn label(&self) -> String {
        let mut out = String::new();
        let mut i = 0;
        while i < self.sms.len() {
            let start = self.sms[i];
            let mut end = start;
            while i + 1 < self.sms.len() && self.sms[i + 1] == end + 1 {
                i += 1;
                end = self.sms[i];
            }
            if !out.is_empty() {
                out.push('+');
            }
            if start == end {
                out.push_str(&start.to_string());
            } else {
                out.push_str(&format!("{start}-{end}"));
            }
            i += 1;
        }
        out
    }
}

/// One tenant of a multi-tenant run: what it wants ([`TenantSpec`]) and
/// where it runs (its [`SmSet`] partition).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TenantRun {
    /// The tenant's workload, arrival offset, and optional deadline.
    pub spec: TenantSpec,
    /// The SM partition the tenant dispatches blocks onto.
    pub sm_set: SmSet,
}

/// Simulates N tenants concurrently, each confined to its SM partition.
///
/// Aggregate statistics cover the whole GPU exactly as
/// [`crate::simulate_app`]'s do; [`RunStats::tenants`] additionally holds
/// one per-tenant breakdown per entry of `tenants`, in order. A
/// single-tenant run over [`SmSet::all`] is bit-exact with
/// [`crate::simulate_app`] (apart from the `tenants` breakdown itself).
///
/// # Errors
///
/// [`SimError::InvalidPartition`] for an empty tenant list, an empty SM
/// set, or an SM id beyond the GPU; [`SimError::KernelUnschedulable`] and
/// [`SimError::CycleLimitExceeded`] as for [`crate::simulate_app`].
pub fn simulate_tenants(
    cfg: &GpuConfig,
    policies: &Policies,
    tenants: &[TenantRun],
) -> Result<RunStats, SimError> {
    simulate_tenants_reported(cfg, policies, tenants).map(|(stats, _)| stats)
}

/// [`simulate_tenants`] that also returns the [`EngineReport`].
///
/// # Errors
///
/// Same as [`simulate_tenants`].
pub fn simulate_tenants_reported(
    cfg: &GpuConfig,
    policies: &Policies,
    tenants: &[TenantRun],
) -> Result<(RunStats, EngineReport), SimError> {
    cfg.validate();
    if tenants.is_empty() {
        return Err(SimError::InvalidPartition {
            tenant: String::new(),
            reason: "a multi-tenant run needs at least one tenant".to_owned(),
        });
    }
    for t in tenants {
        if t.sm_set.is_empty() {
            return Err(SimError::InvalidPartition {
                tenant: t.spec.name().to_owned(),
                reason: "its SM set is empty".to_owned(),
            });
        }
        if let Some(max) = t.sm_set.max_id() {
            if max >= cfg.num_sms {
                return Err(SimError::InvalidPartition {
                    tenant: t.spec.name().to_owned(),
                    reason: format!("SM {max} does not exist (the GPU has {} SMs)", cfg.num_sms),
                });
            }
        }
        for kernel in t.spec.app().kernels() {
            check_schedulable(cfg, kernel)?;
        }
    }
    let cases: Vec<TenantCase<'_>> = tenants
        .iter()
        .map(|t| TenantCase {
            name: t.spec.name(),
            app: t.spec.app(),
            arrival: t.spec.arrival(),
            deadline: t.spec.deadline(),
            sms: t.sm_set.ids().iter().map(|&s| s as usize).collect(),
        })
        .collect();
    run_cases(cfg, policies, &cases, Vec::new(), true)
}

/// One tenant, resolved for dispatch.
pub(crate) struct TenantCase<'a> {
    pub(crate) name: &'a str,
    pub(crate) app: &'a App,
    pub(crate) arrival: u64,
    pub(crate) deadline: Option<u64>,
    /// SM indices of the tenant's partition, ascending.
    pub(crate) sms: Vec<usize>,
}

/// Per-tenant dispatch state.
struct Lane {
    /// Index of the kernel currently dispatching (== kernel count when done).
    kernel_idx: usize,
    /// Blocks of the current kernel already offered and accepted.
    next_block: u32,
    /// Blocks of the current kernel already retired.
    retired: u32,
    /// Round-robin cursor into the tenant's SM set.
    rr: usize,
    /// Cycle each finished kernel drained at.
    kernel_ends: Vec<u64>,
    /// Cycle the last kernel drained at, once finished.
    finish: Option<u64>,
}

impl Lane {
    fn done(&self) -> bool {
        self.finish.is_some()
    }
}

/// The engine's main loop: simulates every tenant case to completion.
///
/// Callers validate the configuration, partitions, and kernel
/// schedulability first. With `emit_tenant_stats` the per-tenant
/// breakdowns land in [`RunStats::tenants`]; without it (the
/// single-tenant [`crate::simulate_app`] path) the field stays empty and
/// the stats are bit-identical to the pre-refactor engine.
pub(crate) fn run_cases(
    cfg: &GpuConfig,
    policies: &Policies,
    cases: &[TenantCase<'_>],
    sinks: Vec<&mut dyn TraceSink>,
    emit_tenant_stats: bool,
) -> Result<(RunStats, EngineReport), SimError> {
    let mut mem_cfg = cfg.mem.clone();
    mem_cfg.mshr_merging |= cfg.mshr_merging;
    let mut mem = MemSystem::new(mem_cfg, cfg.num_sms as usize);
    let mut sms: Vec<SmCore> =
        (0..cfg.num_sms as usize).map(|i| SmCore::new(cfg, i, policies)).collect();
    // Retired-block attribution is only needed when several tenants share
    // the GPU; the single-tenant drain condition reads `is_idle` instead,
    // keeping that hot path untouched.
    let track_retired = cases.len() > 1;
    if track_retired {
        for sm in &mut sms {
            sm.set_track_retired(true);
        }
    }

    let mut aggregator = (cfg.stats.trace_window > 0).then(|| {
        let (domains, banks) = match cfg.connectivity {
            Connectivity::Partitioned => (cfg.subcores_per_sm, cfg.rf_banks_per_subcore),
            Connectivity::FullyConnected => (1, cfg.rf_banks_per_subcore * cfg.subcores_per_sm),
        };
        WindowAggregator::new(
            cfg.stats.trace_sm as u32,
            u64::from(cfg.stats.trace_window),
            domains,
            banks,
        )
    });
    // Quiescent-span skip-ahead is exact for RunStats (including the
    // cycle-keyed, SM-filtered windowed series), but external sinks observe
    // the raw cross-SM event interleaving, which per-SM synthesis reorders
    // — so their presence pins the engine to cycle-by-cycle polling.
    let allow_skip = cfg.engine_mode != EngineMode::Reference && sinks.is_empty();
    // Adaptive mode selection: over fixed evaluation windows, measure the
    // two quantities the fast path converts into wall time — idle polled
    // cycles (what skip-ahead swallows) and ready-set density (a sparse
    // ready set makes the list scan beat the full-table scan) — and fall
    // back to reference-style full scans only while the table is saturated
    // with ready warps and the timeline too dense to skip. Switches happen
    // only at cycle boundaries; both per-cycle paths make identical
    // decisions, so results are unaffected.
    let adaptive = cfg.engine_mode == EngineMode::Adaptive;
    let window = u64::from(cfg.adaptive_window);
    let mut fast = cfg.engine_mode != EngineMode::Reference;
    let mut window_cycles = 0u64;
    let mut window_idle = 0u64;
    let mut adaptive_windows = 0u64;
    let mut adaptive_fallbacks = 0u64;
    let mut tracer = Tracer::new(Vec::new());
    for sink in sinks {
        tracer.attach(sink);
    }
    if let Some(agg) = aggregator.as_mut() {
        tracer.attach(agg);
    }

    let mut now: u64 = 0;
    let mut block_uid: u64 = 0;
    let total_kernels: usize = cases.iter().map(|c| c.app.kernels().len()).sum();
    let mut kernel_end_cycles = Vec::with_capacity(total_kernels);
    let mut lanes: Vec<Lane> = cases
        .iter()
        .map(|c| Lane {
            kernel_idx: 0,
            next_block: 0,
            retired: 0,
            rr: 0,
            kernel_ends: Vec::with_capacity(c.app.kernels().len()),
            finish: None,
        })
        .collect();
    // `owner[uid]`: which lane block `uid` belongs to (uids are handed out
    // sequentially at admission).
    let mut owner: Vec<u32> = Vec::new();
    let mut retired_scratch: Vec<u64> = Vec::new();

    loop {
        let mut changed = false;
        // Thread-block schedulers: each arrived, unfinished tenant offers
        // at most one block per SM of its partition per cycle, rotating
        // its starting SM for fairness.
        for (li, lane) in lanes.iter_mut().enumerate() {
            let case = &cases[li];
            if lane.done() || case.arrival > now {
                continue;
            }
            let kernel = &case.app.kernels()[lane.kernel_idx];
            if lane.next_block < kernel.blocks() {
                for i in 0..case.sms.len() {
                    if lane.next_block >= kernel.blocks() {
                        break;
                    }
                    let s = case.sms[(lane.rr + i) % case.sms.len()];
                    if sms[s].try_accept(kernel, block_uid, now, &mut tracer) {
                        lane.next_block += 1;
                        if track_retired {
                            owner.push(li as u32);
                        }
                        block_uid += 1;
                        changed = true;
                    }
                }
                lane.rr = (lane.rr + 1) % case.sms.len();
            }
        }

        let mut all_idle = true;
        for sm in &mut sms {
            changed |= sm.tick(now, &mut mem, &mut tracer);
            all_idle &= sm.is_idle();
        }
        if track_retired {
            for sm in &mut sms {
                sm.take_retired(&mut retired_scratch);
            }
            for uid in retired_scratch.drain(..) {
                lanes[owner[uid as usize] as usize].retired += 1;
            }
        }
        now += 1;
        if now > cfg.max_cycles {
            return Err(SimError::CycleLimitExceeded { limit: cfg.max_cycles });
        }
        if adaptive {
            window_cycles += 1;
            window_idle += u64::from(!changed);
        }

        // Kernel completion: a tenant's kernel has drained once every
        // block was offered and retired. Without retirement tracking (one
        // tenant) the equivalent condition is a fully-idle GPU — blocks
        // only free once their last warp exits with nothing in flight, so
        // "every block retired" and "all SMs idle" coincide.
        let mut advanced = false;
        for (li, lane) in lanes.iter_mut().enumerate() {
            let case = &cases[li];
            if lane.done() || case.arrival > now - 1 {
                continue;
            }
            let kernels = case.app.kernels();
            let kernel = &kernels[lane.kernel_idx];
            let drained = lane.next_block >= kernel.blocks()
                && if track_retired { lane.retired >= kernel.blocks() } else { all_idle };
            if drained {
                lane.kernel_ends.push(now);
                kernel_end_cycles.push(now);
                lane.kernel_idx += 1;
                lane.next_block = 0;
                lane.retired = 0;
                advanced = true;
                if lane.kernel_idx == kernels.len() {
                    lane.finish = Some(now);
                }
            }
        }
        if lanes.iter().all(Lane::done) {
            break;
        }
        if advanced {
            // The cycle that drains a kernel starts the next one (or
            // another tenant's offers) immediately — no skip-ahead or
            // window evaluation, exactly like the per-kernel loop
            // boundary of the single-app engine.
            continue;
        }

        if allow_skip && fast && !changed {
            // Nothing moved this cycle, so every cycle until the
            // earliest wake point repeats it verbatim: admission offers
            // keep failing identically (failed plans stay stashed), the
            // memory system is passive, and each SM only re-charges the
            // same stall classification. Synthesize those cycles
            // wholesale and jump to the wake point. The tick just run
            // was at `now - 1`, so hints are computed relative to it.
            let mut target = u64::MAX;
            for sm in &sms {
                target = target.min(sm.wake_hint(now - 1));
            }
            // Never skip past a pending tenant arrival: its first offer
            // round must run on its arrival cycle.
            for (li, lane) in lanes.iter().enumerate() {
                if !lane.done() && cases[li].arrival >= now {
                    target = target.min(cases[li].arrival);
                }
            }
            // A MAX target (barrier deadlock in a malformed kernel) runs
            // into the cycle limit exactly as the polled loop would.
            let target = target.min(cfg.max_cycles.saturating_add(1));
            if target > now {
                let skipped = target - now;
                for sm in &mut sms {
                    sm.account_skipped(now, skipped, &mut tracer);
                }
                for (li, lane) in lanes.iter_mut().enumerate() {
                    let case = &cases[li];
                    if lane.done() || case.arrival >= now {
                        continue;
                    }
                    if lane.next_block < case.app.kernels()[lane.kernel_idx].blocks() {
                        // The tenant's block scheduler would have rotated
                        // once per polled cycle.
                        lane.rr = (lane.rr + skipped as usize) % case.sms.len();
                    }
                }
                now = target;
                if now > cfg.max_cycles {
                    return Err(SimError::CycleLimitExceeded { limit: cfg.max_cycles });
                }
                if adaptive {
                    // Skipped cycles are idle by construction: credit
                    // them so dense-then-sparse workloads read as
                    // sparse and stay on the fast path.
                    window_cycles += skipped;
                    window_idle += skipped;
                }
            }
        }
        if adaptive && window_cycles >= window {
            adaptive_windows += 1;
            // Ready-set density sample: how full are the slot tables
            // right now? The ready-list scan wins whenever the ready
            // set is a strict subset of the slots (few candidates to
            // visit) OR idle cycles exist for skip-ahead to swallow.
            // Only a saturated table with a dense timeline makes the
            // full scan the cheaper path — the list upkeep then tracks
            // every slot for no scan savings and no skips.
            let (ready, slots) = sms.iter().fold((0u64, 0u64), |(r, t), sm| {
                let (sr, st) = sm.ready_density();
                (r + sr, t + st)
            });
            let idle16 = window_idle.saturating_mul(16);
            // Hysteresis: fall back only at full density with under
            // 1/16 idle; rejoin as soon as density drops below 7/8 or
            // idle reaches 1/8.
            if fast && ready >= slots && idle16 < window_cycles {
                fast = false;
                for sm in &mut sms {
                    sm.set_fast(false);
                }
            } else if !fast
                && (ready.saturating_mul(8) < slots.saturating_mul(7)
                    || idle16 >= window_cycles.saturating_mul(2))
            {
                fast = true;
                for sm in &mut sms {
                    sm.set_fast(true);
                }
            }
            adaptive_fallbacks += u64::from(!fast);
            window_cycles = 0;
            window_idle = 0;
        }
    }
    drop(tracer);

    let mut stats = RunStats {
        cycles: now,
        kernel_end_cycles,
        mem: mem.stats(),
        windowed: aggregator.map(|agg| agg.into_series(now)),
        ..Default::default()
    };
    if emit_tenant_stats {
        for (li, lane) in lanes.iter().enumerate() {
            let case = &cases[li];
            let mut tenant = TenantStats {
                name: case.name.to_owned(),
                arrival: case.arrival,
                finish: lane.finish.unwrap_or(now),
                kernel_end_cycles: lane.kernel_ends.clone(),
                deadline: case.deadline,
                sm_set: case.sms.iter().map(|&s| s as u32).collect(),
                instructions: 0,
                stalls: StallBreakdown::default(),
            };
            for &s in &case.sms {
                tenant.instructions += sms[s].issued_total();
                tenant.stalls.add(&sms[s].stalls());
            }
            stats.tenants.push(tenant);
        }
    }
    let mut stalls = StallBreakdown::default();
    for sm in &mut sms {
        sm.assert_scheduler_accounting();
        stats.instructions += sm.issued_total();
        stats.issued_per_scheduler.push(sm.issued_per_scheduler());
        let (grants, conflicts) = sm.rf_stats();
        stats.rf_reads += grants;
        stats.rf_conflict_enqueues += conflicts;
        stalls.add(&sm.stalls());
        stats.issue_cycles += sm.issue_cycles();
        stats.active_cycles += sm.active_cycles();
        for (t, v) in stats.pipe_dispatched.iter_mut().zip(sm.pipe_dispatched()) {
            *t += v;
        }
        stats.warp_cycles += sm.warp_cycles();
        let trace = sm.take_rf_trace();
        if !trace.is_empty() {
            stats.rf_read_trace = trace;
        }
    }
    stats.stalls = stalls;
    Ok((stats, EngineReport { mode: cfg.engine_mode, adaptive_windows, adaptive_fallbacks }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate_app;
    use subcore_isa::{fma_kernel, App, Suite};

    fn micro(name: &str, blocks: u32, fmas: u32) -> App {
        App::new(name, Suite::Micro, vec![fma_kernel("k", blocks, 8, fmas)])
    }

    fn cfg() -> GpuConfig {
        GpuConfig::volta_v100().with_sms(4)
    }

    #[test]
    fn sm_set_basics() {
        let set = SmSet::new(vec![3, 1, 1, 0]);
        assert_eq!(set.ids(), &[0, 1, 3]);
        assert_eq!(set.len(), 3);
        assert!(set.contains(3) && !set.contains(2));
        assert_eq!(set.max_id(), Some(3));
        assert_eq!(set.label(), "0-1+3");
        assert_eq!(SmSet::contiguous(4, 4).label(), "4-7");
        assert_eq!(SmSet::all(2).ids(), &[0, 1]);
        assert!(SmSet::new(Vec::new()).is_empty());
        assert!(set.overlaps(&SmSet::contiguous(3, 2)));
        assert!(!set.overlaps(&SmSet::contiguous(4, 4)));
    }

    #[test]
    fn empty_tenant_list_and_bad_partitions_are_errors() {
        let cfg = cfg();
        let p = Policies::hardware_baseline();
        let err = simulate_tenants(&cfg, &p, &[]).unwrap_err();
        assert!(matches!(err, SimError::InvalidPartition { .. }), "{err}");
        let empty =
            TenantRun { spec: TenantSpec::new(micro("a", 2, 16)), sm_set: SmSet::new(Vec::new()) };
        let err = simulate_tenants(&cfg, &p, &[empty]).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
        let oob =
            TenantRun { spec: TenantSpec::new(micro("a", 2, 16)), sm_set: SmSet::contiguous(3, 2) };
        let err = simulate_tenants(&cfg, &p, &[oob]).unwrap_err();
        assert!(err.to_string().contains("SM 4"), "{err}");
    }

    #[test]
    fn two_disjoint_tenants_complete_with_breakdowns() {
        let cfg = cfg();
        let p = Policies::hardware_baseline();
        let tenants = [
            TenantRun { spec: TenantSpec::new(micro("a", 4, 64)), sm_set: SmSet::contiguous(0, 2) },
            TenantRun {
                spec: TenantSpec::new(micro("b", 2, 32)).with_deadline(1_000_000),
                sm_set: SmSet::contiguous(2, 2),
            },
        ];
        let stats = simulate_tenants(&cfg, &p, &tenants).unwrap();
        assert_eq!(stats.tenants.len(), 2);
        let (a, b) = (&stats.tenants[0], &stats.tenants[1]);
        assert_eq!(a.name, "a");
        assert_eq!(a.sm_set, vec![0, 1]);
        assert_eq!(b.sm_set, vec![2, 3]);
        assert!(a.finish > 0 && b.finish > 0);
        assert_eq!(stats.cycles, a.finish.max(b.finish));
        assert_eq!(a.kernel_end_cycles, vec![a.finish]);
        // Disjoint partitions attribute instructions exactly.
        assert_eq!(stats.instructions, a.instructions + b.instructions);
        assert!(!b.missed_deadline());
        assert!(b.deadline_slack().unwrap() > 0);
        // The aggregate kernel-end merge holds both tenants' kernels.
        assert_eq!(stats.kernel_end_cycles.len(), 2);
        // Both tenants ran work.
        assert!(a.instructions > 0 && b.instructions > 0);
    }

    #[test]
    fn arrival_offsets_are_honored_across_modes() {
        let p = Policies::hardware_baseline();
        for mode in [EngineMode::Reference, EngineMode::EventDriven, EngineMode::Adaptive] {
            let cfg = GpuConfig { engine_mode: mode, ..cfg() };
            let tenants = [
                TenantRun {
                    spec: TenantSpec::new(micro("a", 2, 32)),
                    sm_set: SmSet::contiguous(0, 2),
                },
                TenantRun {
                    spec: TenantSpec::new(micro("b", 2, 32)).with_arrival(5_000),
                    sm_set: SmSet::contiguous(2, 2),
                },
            ];
            let stats = simulate_tenants(&cfg, &p, &tenants).unwrap();
            assert!(stats.tenants[1].finish > 5_000, "{mode:?}: late tenant finished early");
            assert!(stats.tenants[1].makespan() < stats.tenants[1].finish);
        }
    }

    #[test]
    fn shared_sm_sets_run_to_completion() {
        let cfg = cfg();
        let p = Policies::hardware_baseline();
        let tenants = [
            TenantRun { spec: TenantSpec::new(micro("a", 4, 64)), sm_set: SmSet::all(4) },
            TenantRun { spec: TenantSpec::new(micro("b", 4, 64)), sm_set: SmSet::all(4) },
        ];
        let stats = simulate_tenants(&cfg, &p, &tenants).unwrap();
        assert_eq!(stats.tenants.len(), 2);
        assert!(stats.tenants.iter().all(|t| t.finish > 0));
        // Solo instruction counts are conserved under sharing.
        let solo: u64 = tenants
            .iter()
            .map(|t| simulate_app(&cfg, &p, t.spec.app()).unwrap().instructions)
            .sum();
        assert_eq!(stats.instructions, solo);
    }

    #[test]
    fn single_tenant_full_set_matches_simulate_app() {
        let cfg = cfg();
        let p = Policies::hardware_baseline();
        let app = micro("solo", 6, 128);
        let solo = simulate_app(&cfg, &p, &app).unwrap();
        let mut via_tenants = simulate_tenants(
            &cfg,
            &p,
            &[TenantRun { spec: TenantSpec::new(app.clone()), sm_set: SmSet::all(4) }],
        )
        .unwrap();
        assert_eq!(via_tenants.tenants.len(), 1);
        assert_eq!(via_tenants.tenants[0].finish, solo.cycles);
        via_tenants.tenants.clear();
        assert_eq!(via_tenants, solo);
    }
}
