//! Kernels: launch dimensions, per-warp programs, and resource demands.

use crate::{ProgramBuilder, Reg, WarpProgram, WARP_SIZE};
use std::sync::Arc;

/// Grid/block launch dimensions, flattened to 1-D (the simulator does not
/// care about multi-dimensional indexing, only about counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaunchDims {
    /// Number of thread blocks in the grid.
    pub blocks: u32,
    /// Number of warps per thread block (threads / 32).
    pub warps_per_block: u32,
}

/// A kernel: launch dimensions, per-warp-slot programs, and the static
/// resources every thread block claims on an SM.
///
/// Warp specialization is expressed by assigning different programs to
/// different warp slots within the block; the slot index is exactly the
/// `warpID = threadID / 32` of the paper's Fig. 4.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Kernel {
    name: String,
    dims: LaunchDims,
    regs_per_thread: u16,
    shared_mem_bytes: u32,
    /// `programs[w]` is the program run by warp slot `w` of every block.
    programs: Vec<Arc<WarpProgram>>,
}

impl Kernel {
    /// The kernel name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Launch dimensions.
    pub fn dims(&self) -> LaunchDims {
        self.dims
    }

    /// Number of thread blocks in the grid.
    pub fn blocks(&self) -> u32 {
        self.dims.blocks
    }

    /// Warps per thread block.
    pub fn warps_per_block(&self) -> u32 {
        self.dims.warps_per_block
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.dims.warps_per_block * WARP_SIZE
    }

    /// Architectural registers used per thread.
    pub fn regs_per_thread(&self) -> u16 {
        self.regs_per_thread
    }

    /// Registers a single warp occupies in a sub-core register file
    /// (32 threads × regs/thread).
    pub fn regs_per_warp(&self) -> u32 {
        u32::from(self.regs_per_thread) * WARP_SIZE
    }

    /// Shared-memory bytes claimed per block.
    pub fn shared_mem_bytes(&self) -> u32 {
        self.shared_mem_bytes
    }

    /// The program run by warp slot `warp_in_block`.
    ///
    /// # Panics
    ///
    /// Panics if `warp_in_block >= warps_per_block()`.
    pub fn program(&self, warp_in_block: u32) -> &Arc<WarpProgram> {
        &self.programs[warp_in_block as usize]
    }

    /// Total dynamic instructions across the whole grid.
    pub fn total_dynamic_instructions(&self) -> u64 {
        let per_block: u64 = self.programs.iter().map(|p| p.dynamic_len()).sum();
        per_block * u64::from(self.dims.blocks)
    }
}

/// Builder for [`Kernel`]s.
///
/// # Example
///
/// ```
/// use subcore_isa::{KernelBuilder, ProgramBuilder, Reg};
///
/// let p = ProgramBuilder::new()
///     .repeat(16, |b| { b.fma(Reg(0), Reg(0), Reg(1), Reg(2)); })
///     .build();
/// let k = KernelBuilder::new("demo")
///     .blocks(4)
///     .warps_per_block(8)
///     .regs_per_thread(16)
///     .uniform_program(p)
///     .build();
/// assert_eq!(k.total_dynamic_instructions(), 4 * 8 * 17);
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    blocks: u32,
    warps_per_block: u32,
    regs_per_thread: u16,
    shared_mem_bytes: u32,
    programs: Option<Vec<Arc<WarpProgram>>>,
}

impl KernelBuilder {
    /// Starts a builder for a kernel called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            blocks: 1,
            warps_per_block: 1,
            regs_per_thread: 32,
            shared_mem_bytes: 0,
            programs: None,
        }
    }

    /// Sets the number of thread blocks (default 1).
    pub fn blocks(mut self, blocks: u32) -> Self {
        self.blocks = blocks;
        self
    }

    /// Sets warps per block (default 1, max 64).
    pub fn warps_per_block(mut self, warps: u32) -> Self {
        self.warps_per_block = warps;
        self
    }

    /// Sets registers per thread (default 32, max 256).
    pub fn regs_per_thread(mut self, regs: u16) -> Self {
        self.regs_per_thread = regs;
        self
    }

    /// Sets shared memory bytes per block (default 0).
    pub fn shared_mem_bytes(mut self, bytes: u32) -> Self {
        self.shared_mem_bytes = bytes;
        self
    }

    /// Every warp slot runs the same program.
    pub fn uniform_program(mut self, program: Arc<WarpProgram>) -> Self {
        self.programs = Some(vec![program; self.warps_per_block as usize]);
        self
    }

    /// Warp slot `w` runs `programs[w]`; the length fixes `warps_per_block`.
    pub fn per_warp_programs(mut self, programs: Vec<Arc<WarpProgram>>) -> Self {
        self.warps_per_block = programs.len() as u32;
        self.programs = Some(programs);
        self
    }

    /// Finishes the kernel.
    ///
    /// # Panics
    ///
    /// Panics if no program was supplied, if dimensions are zero, if
    /// `warps_per_block > 64`, or if `regs_per_thread` exceeds
    /// [`Reg::MAX_REGS`].
    pub fn build(self) -> Kernel {
        let programs = self.programs.expect("kernel needs a program");
        assert!(self.blocks > 0, "kernel needs at least one block");
        assert!((1..=64).contains(&self.warps_per_block), "warps per block must be in 1..=64");
        assert_eq!(programs.len() as u32, self.warps_per_block);
        assert!(
            (self.regs_per_thread as usize) <= Reg::MAX_REGS,
            "regs per thread exceeds the 256-register limit"
        );
        assert!(self.regs_per_thread >= 1, "kernels use at least one register");
        Kernel {
            name: self.name,
            dims: LaunchDims { blocks: self.blocks, warps_per_block: self.warps_per_block },
            regs_per_thread: self.regs_per_thread,
            shared_mem_bytes: self.shared_mem_bytes,
            programs,
        }
    }
}

/// Convenience: a kernel in which every warp runs `body_len` FMAs — the
/// paper's baseline microbenchmark shape.
pub fn fma_kernel(name: &str, blocks: u32, warps_per_block: u32, fmas: u32) -> Kernel {
    let program = ProgramBuilder::new()
        .repeat(fmas, |b| {
            b.fma(Reg(0), Reg(0), Reg(1), Reg(2));
        })
        .barrier()
        .build();
    KernelBuilder::new(name)
        .blocks(blocks)
        .warps_per_block(warps_per_block)
        .regs_per_thread(8)
        .uniform_program(program)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_overrides() {
        let p = ProgramBuilder::new().barrier().build();
        let k = KernelBuilder::new("k")
            .blocks(10)
            .warps_per_block(4)
            .regs_per_thread(40)
            .shared_mem_bytes(2048)
            .uniform_program(p)
            .build();
        assert_eq!(k.name(), "k");
        assert_eq!(k.blocks(), 10);
        assert_eq!(k.threads_per_block(), 128);
        assert_eq!(k.regs_per_warp(), 40 * 32);
        assert_eq!(k.shared_mem_bytes(), 2048);
    }

    #[test]
    fn per_warp_programs_fix_block_width() {
        let a = ProgramBuilder::new().barrier().build();
        let b = ProgramBuilder::new()
            .repeat(10, |x| {
                x.fma(Reg(0), Reg(0), Reg(1), Reg(2));
            })
            .barrier()
            .build();
        let k =
            KernelBuilder::new("spec").per_warp_programs(vec![b, a.clone(), a.clone(), a]).build();
        assert_eq!(k.warps_per_block(), 4);
        assert!(k.program(0).dynamic_len() > k.program(1).dynamic_len());
    }

    #[test]
    #[should_panic(expected = "needs a program")]
    fn build_requires_program() {
        let _ = KernelBuilder::new("empty").build();
    }

    #[test]
    #[should_panic(expected = "warps per block")]
    fn build_rejects_oversized_blocks() {
        let p = ProgramBuilder::new().barrier().build();
        let _ = KernelBuilder::new("big").warps_per_block(65).uniform_program(p).build();
    }

    #[test]
    fn fma_kernel_counts() {
        let k = fma_kernel("fma", 2, 8, 100);
        // per warp: 100 fma + barrier + exit = 102
        assert_eq!(k.total_dynamic_instructions(), 2 * 8 * 102);
    }
}
