//! Bank-pressure pass: static operand-read histograms under the engine's
//! register→bank mapping — the static analog of the dynamic RBA score.
//!
//! The pass replays each warp's program *statically* (weighting segment
//! bodies by their repeat counts) and assigns every source operand to the
//! bank [`subcore_engine::bank_of_register`] would read it from, using the
//! same warp→sub-core placement the round-robin assigner produces for a
//! single block. Two hazards are flagged:
//!
//! * **L010** (warning) — some warp's hottest bank receives at least
//!   `bank_skew_threshold`× the mean per-bank operand load. With the
//!   2-bank sub-core file, all-reads-on-one-bank is exactly 2.0×.
//! * **L011** (warning) — multi-operand instructions systematically read
//!   several operands from the *same* bank (excess serialization above the
//!   unavoidable `ceil(sources/banks)` floor). This is the pattern the
//!   collector units serialize on and the RBA scheduler routes around.
//! * **L036** (warning) — the L010 skew is *layout-induced*: a register
//!   permutation provably flattens the hottest bank below the skew
//!   threshold. The message names the fix (`repro opt`), closing the loop
//!   between the diagnosis and the `subcore-opt` remapper.

use crate::dataflow::ProgramDataflow;
use crate::diag::{codes, Diagnostic, Location, Severity};
use crate::LintOptions;
use subcore_engine::{bank_of_register, Connectivity, GpuConfig};
use subcore_isa::Kernel;

/// The smallest achievable hottest-bank load when register read counts
/// `reads[r]` may be permuted freely across the register slots `0..len`,
/// each slot `x` feeding bank `x % banks` (warp 0's view of the engine
/// swizzle; other warps see a pure rotation, so the bound is warp-
/// independent).
///
/// Greedy: each bank has capacity `#{x : x % banks == b}` slots; registers
/// are placed heaviest-first onto the least-loaded bank with free slots.
/// The result is exact when counts are near-uniform and otherwise an upper
/// bound on the optimum — still a *certificate* that some permutation
/// achieves this max load, which is all L036 and the remapper need.
pub fn flattened_max_load(reads: &[u64], banks: u32) -> u64 {
    let banks = banks.max(1) as usize;
    if reads.is_empty() {
        return 0;
    }
    let mut capacity = vec![0u64; banks];
    for slot in 0..reads.len() {
        capacity[slot % banks] += 1;
    }
    let mut load = vec![0u64; banks];
    let mut counts: Vec<u64> = reads.to_vec();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    for c in counts {
        let b = (0..banks)
            .filter(|&b| capacity[b] > 0)
            .min_by_key(|&b| load[b])
            .expect("total slot capacity equals reads.len()");
        capacity[b] -= 1;
        load[b] += c;
    }
    load.into_iter().max().unwrap_or(0)
}

/// Static bank-pressure summary for one kernel under one configuration.
///
/// Also the input to `repro lint --calibrate`, which rank-correlates
/// [`BankPressure::score`] against traced mean bank-queue depths.
#[derive(Debug, Clone)]
pub struct BankPressure {
    /// Banks visible to one scheduler domain.
    pub banks: u32,
    /// Operand reads per bank, aggregated over all warps of one block.
    pub per_bank: Vec<u64>,
    /// Warp slot with the most skewed private histogram.
    pub worst_warp: u32,
    /// That warp's hottest-bank / mean-bank load ratio.
    pub worst_warp_skew: f64,
    /// Dynamic instructions (per block) with ≥ 2 register sources.
    pub multi_src_instrs: u64,
    /// Same-bank operand pairings beyond the unavoidable floor.
    pub excess_serialization: u64,
    /// Total dynamic instructions per block.
    pub dynamic_instrs: u64,
    /// Total dynamic source-operand reads per block.
    pub source_reads: u64,
    /// Dynamic memory instructions per block.
    pub memory_instrs: u64,
}

impl BankPressure {
    /// Computes the static histogram for `kernel` under `cfg`.
    ///
    /// Warp placement mirrors the engine's round-robin assigner for a
    /// single block: warp `w` lands on sub-core `w % S` as local warp
    /// `w / S`. In fully-connected mode one domain owns every bank and
    /// local indices are the block-local warp ids.
    pub fn of(kernel: &Kernel, cfg: &GpuConfig) -> Self {
        let (subcores, banks) = match cfg.connectivity {
            Connectivity::Partitioned => (cfg.subcores_per_sm.max(1), cfg.rf_banks_per_subcore),
            Connectivity::FullyConnected => (1, cfg.total_banks()),
        };
        let banks = banks.max(1);
        let mut agg = vec![0u64; banks as usize];
        let mut worst_warp = 0u32;
        let mut worst_warp_skew = 0.0f64;
        let mut multi_src_instrs = 0u64;
        let mut excess = 0u64;
        let mut dynamic_instrs = 0u64;
        let mut source_reads = 0u64;
        let mut memory_instrs = 0u64;

        for w in 0..kernel.warps_per_block() {
            let local = w / subcores;
            let mut hist = vec![0u64; banks as usize];
            for seg in kernel.program(w).segments() {
                let times = u64::from(seg.repeat);
                if times == 0 {
                    continue;
                }
                for instr in seg.body.iter() {
                    dynamic_instrs += times;
                    if instr.mem.is_some() {
                        memory_instrs += times;
                    }
                    let mut per_instr = vec![0u64; banks as usize];
                    let mut n_srcs = 0u64;
                    for src in instr.sources() {
                        let bank = bank_of_register(src, local, banks) as usize;
                        hist[bank] += times;
                        per_instr[bank] += 1;
                        source_reads += times;
                        n_srcs += 1;
                    }
                    if n_srcs >= 2 {
                        multi_src_instrs += times;
                        let floor = n_srcs.div_ceil(u64::from(banks));
                        let max = per_instr.iter().copied().max().unwrap_or(0);
                        excess += max.saturating_sub(floor) * times;
                    }
                }
            }
            let total: u64 = hist.iter().sum();
            if total > 0 {
                let mean = total as f64 / banks as f64;
                let skew = *hist.iter().max().unwrap() as f64 / mean;
                if skew > worst_warp_skew {
                    worst_warp_skew = skew;
                    worst_warp = w;
                }
            }
            for (a, h) in agg.iter_mut().zip(&hist) {
                *a += h;
            }
        }

        BankPressure {
            banks,
            per_bank: agg,
            worst_warp,
            worst_warp_skew,
            multi_src_instrs,
            excess_serialization: excess,
            dynamic_instrs,
            source_reads,
            memory_instrs,
        }
    }

    /// Fraction of multi-operand instructions' same-bank pairings above the
    /// unavoidable floor: 0.0 = perfectly spread, 1.0 = every multi-operand
    /// instruction fully serialized on one bank.
    pub fn clustering(&self) -> f64 {
        if self.multi_src_instrs == 0 {
            0.0
        } else {
            self.excess_serialization as f64 / self.multi_src_instrs as f64
        }
    }

    /// Scalar used by `lint --calibrate` to rank kernels: operand reads per
    /// dynamic instruction, inflated by in-bank clustering and discounted
    /// by the memory fraction (memory-bound kernels issue operand reads
    /// more slowly, so their banks queue less).
    pub fn score(&self) -> f64 {
        if self.dynamic_instrs == 0 {
            return 0.0;
        }
        let reads_per_instr = self.source_reads as f64 / self.dynamic_instrs as f64;
        let mem_fraction = self.memory_instrs as f64 / self.dynamic_instrs as f64;
        reads_per_instr * (1.0 + self.clustering()) * (1.0 - mem_fraction)
    }
}

/// Runs the bank-pressure pass over `kernel`, appending diagnostics.
pub fn check(kernel: &Kernel, cfg: &GpuConfig, opts: &LintOptions, out: &mut Vec<Diagnostic>) {
    let p = BankPressure::of(kernel, cfg);
    if p.worst_warp_skew >= opts.bank_skew_threshold {
        out.push(Diagnostic::new(
            codes::BANK_SKEW,
            Severity::Warning,
            Location::kernel(kernel.name()).warps(p.worst_warp, p.worst_warp),
            format!(
                "hottest register bank receives {:.2}x the mean operand load across {} banks \
                 (threshold {:.2}); reads will serialize on that bank's port",
                p.worst_warp_skew, p.banks, opts.bank_skew_threshold
            ),
        ));
        // L036: is that skew layout-induced, i.e. provably removable by a
        // register permutation? Compute the best achievable hottest-bank
        // load for the worst warp's read counts; rotation invariance of the
        // swizzle makes the bound hold for every warp sharing the program.
        let declared = u32::from(kernel.regs_per_thread());
        let flow =
            ProgramDataflow::of(p.worst_warp, p.worst_warp, kernel.program(p.worst_warp), declared);
        if flow.out_of_range.is_empty() {
            let reads = flow.read_counts(declared);
            let total: u64 = reads.iter().sum();
            if total > 0 {
                let mean = total as f64 / f64::from(p.banks);
                let flattened = flattened_max_load(&reads, p.banks) as f64 / mean;
                if flattened < opts.bank_skew_threshold {
                    out.push(Diagnostic::new(
                        codes::BANK_REMAPPABLE,
                        Severity::Warning,
                        Location::kernel(kernel.name()).warps(p.worst_warp, p.worst_warp),
                        format!(
                            "bank skew is layout-induced: a register permutation flattens the \
                             hottest bank from {:.2}x to {:.2}x the mean load; run `repro opt` \
                             to apply the conflict-free remap",
                            p.worst_warp_skew, flattened
                        ),
                    ));
                }
            }
        }
    }
    if p.multi_src_instrs > 0 && p.clustering() >= opts.clustering_threshold {
        out.push(Diagnostic::new(
            codes::BANK_CLUSTERING,
            Severity::Warning,
            Location::kernel(kernel.name()),
            format!(
                "operands cluster in-bank: {:.0}% of multi-operand instructions read extra \
                 operands from one bank beyond the unavoidable minimum (threshold {:.0}%); \
                 the static analog of a high RBA score",
                p.clustering() * 100.0,
                opts.clustering_threshold * 100.0
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LintOptions;
    use subcore_isa::{KernelBuilder, ProgramBuilder, Reg};

    fn volta() -> GpuConfig {
        GpuConfig::volta_v100()
    }

    /// All operands even → every read lands on bank 0 for warp 0 (local
    /// index 0 under round-robin placement).
    fn one_bank_kernel() -> Kernel {
        let p = ProgramBuilder::new()
            .repeat(32, |b| {
                b.fma(Reg(1), Reg(0), Reg(2), Reg(4));
                b.iadd(Reg(3), Reg(6), Reg(8));
            })
            .build();
        KernelBuilder::new("onebank").regs_per_thread(16).uniform_program(p).build()
    }

    /// Operands alternate parity → reads spread across both banks and
    /// multi-operand instructions split their sources.
    fn spread_kernel() -> Kernel {
        let p = ProgramBuilder::new()
            .repeat(32, |b| {
                b.fma(Reg(8), Reg(0), Reg(1), Reg(2));
                b.iadd(Reg(9), Reg(3), Reg(4));
            })
            .build();
        KernelBuilder::new("spread").regs_per_thread(16).uniform_program(p).build()
    }

    #[test]
    fn same_bank_operands_fire_skew_and_clustering() {
        let mut out = Vec::new();
        check(&one_bank_kernel(), &volta(), &LintOptions::default(), &mut out);
        let codes_found: Vec<_> = out.iter().map(|d| d.code).collect();
        assert!(codes_found.contains(&codes::BANK_SKEW), "{codes_found:?}");
        assert!(codes_found.contains(&codes::BANK_CLUSTERING), "{codes_found:?}");
    }

    #[test]
    fn spread_operands_stay_quiet() {
        let mut out = Vec::new();
        check(&spread_kernel(), &volta(), &LintOptions::default(), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn histogram_matches_hand_count() {
        // One fma per iteration, warp 0 (local 0): sources r0, r2, r4 all
        // land on bank 0 of the 2-bank file.
        let p = BankPressure::of(&one_bank_kernel(), &volta());
        assert_eq!(p.banks, 2);
        // The single warp puts all 5 reads/iter × 32 iters on bank 0.
        assert_eq!(p.per_bank, vec![5 * 32, 0]);
        assert_eq!(p.per_bank.iter().sum::<u64>(), p.source_reads);
        assert!((p.clustering() - 1.0).abs() < 1e-9, "fully clustered: {}", p.clustering());
        assert!((p.worst_warp_skew - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fully_connected_pools_every_bank() {
        let cfg = volta().fully_connected();
        let p = BankPressure::of(&one_bank_kernel(), &cfg);
        assert_eq!(p.banks, cfg.total_banks());
        // 8 pooled banks: r0, r2, r4 now hit banks 0, 2, 4 — no excess.
        assert_eq!(p.excess_serialization, 0);
    }

    #[test]
    fn flattened_load_respects_slot_capacities() {
        // 4 slots, 2 banks → 2 slots per bank. Heaviest-first placement
        // puts 10 and 8 on different banks; zeros fill the rest.
        assert_eq!(flattened_max_load(&[10, 0, 8, 0], 2), 10);
        // Uniform counts flatten perfectly: 4×6 over 2 banks → 12 each.
        assert_eq!(flattened_max_load(&[6, 6, 6, 6], 2), 12);
        // One register dominating is irreducible; slot capacity (2 per
        // bank) forces one light register to share its bank.
        assert_eq!(flattened_max_load(&[100, 1, 1, 1], 2), 101);
        assert_eq!(flattened_max_load(&[], 2), 0);
    }

    #[test]
    fn layout_induced_skew_names_the_remap_fix() {
        let mut out = Vec::new();
        check(&one_bank_kernel(), &volta(), &LintOptions::default(), &mut out);
        let hit = out.iter().find(|d| d.code == codes::BANK_REMAPPABLE).expect("L036 fires");
        assert_eq!(hit.severity, Severity::Warning);
        assert!(hit.message.contains("repro opt"), "{}", hit.message);
        // Five equally-hot registers over two banks: best split is 3/2 →
        // 96/160-per-bank-mean = 1.20x, well under the 2.0 threshold.
        assert!(hit.message.contains("1.20x"), "{}", hit.message);
    }

    #[test]
    fn score_ranks_clustered_above_spread() {
        let clustered = BankPressure::of(&one_bank_kernel(), &volta());
        let spread = BankPressure::of(&spread_kernel(), &volta());
        assert!(clustered.score() > spread.score());
    }
}
