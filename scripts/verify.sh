#!/usr/bin/env bash
# Repo verification gate: the tier-1 build+test check, formatting, a
# zero-warning clippy pass over every target, a zero-warning doc build,
# the registry lint gate, the cost-model calibration gate, and tracing,
# remap, bench, chaos, and metrics smoke tests.
# Run from the repo root:
#
#   scripts/verify.sh
#
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo '==> RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps'
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# Static analysis gate: the shipped registry must be free of lint errors
# and every warning covered by an explicit allow-list entry (see
# crates/workloads/src/lint_allow.rs).
echo "==> repro lint --all --deny-warnings"
cargo run --quiet --release -p subcore-experiments --bin repro -- lint --all --deny-warnings \
    > /dev/null

# Tracing smoke test: a tiny traced run must produce a non-empty windowed
# series, and the traced run's RunStats must be bit-identical to the
# untraced run's (probes observe, never perturb).
echo "==> trace smoke test"
cargo test -q -p subcore-integration --test trace_smoke

# Engine-mode perf regression gate: the shipping adaptive engine must stay
# bit-exact with the polled reference on the headline workload subset AND
# hold the committed baseline (results/BENCH_engine.json): no case below
# parity (minus a 5% timing-noise band), geomean at or above the recorded
# floor. Timings are min-of-3 per mode, alternating. To re-record the
# baseline after an intentional change, run bench-engine without --check.
# This also doubles as the metrics-overhead gate: subcore-metrics is
# compiled into the engine path but gate-disabled here, so the baseline
# only holds if the disabled metrics path is genuinely free.
echo "==> repro bench-engine --check"
cargo run --quiet --release -p subcore-experiments --bin repro -- bench-engine --check

# Cost-model calibration gate: the static cycle estimator must rank the
# whole 112-app registry within Spearman >= 0.8 of simulated cycles
# (repro exits nonzero below the floor) and leave the per-app evidence at
# results/estimate_calibration.json for the paper digest.
echo "==> repro estimate --calibrate"
cargo run --quiet --release -p subcore-experiments --bin repro -- estimate --calibrate \
    > /dev/null
test -s results/estimate_calibration.json

# Remap smoke: the conflict-free register remapper must produce evidence
# (and not crash) on a structured-bank stressor.
echo "==> repro opt pb-mriq"
cargo run --quiet --release -p subcore-experiments --bin repro -- opt pb-mriq \
    | grep -q "static bank cost"

# Fault-injection smoke: a seeded chaos drill (injected panics, stalls,
# and cache corruption; mid-campaign kill; journal resume) must recover
# to results bit-exact with a fault-free reference run.
echo "==> repro chaos --seed 42 --fault-rate 0.3"
cargo run --quiet --release -p subcore-experiments --bin repro -- chaos --seed 42 --fault-rate 0.3

# Multi-tenant smoke: a 2-tenant rigid-vs-contention-aware sweep on the
# micro mixes must produce the interference matrix and deadline tables,
# and an immediate --resume rerun must replay every cell from the journal
# (exercising the tenants campaign's resume path).
echo "==> tenants smoke test (repro tenants + --resume)"
TENANTS_TMP="$(mktemp -d)"
cargo run --quiet --release -p subcore-experiments --bin repro -- tenants \
    --mix micro-skewed --mix micro-deadline --out "$TENANTS_TMP" > /dev/null
test -s "$TENANTS_TMP/tenants_micro-skewed.csv"
test -s "$TENANTS_TMP/tenants_deadlines.csv"
cargo run --quiet --release -p subcore-experiments --bin repro -- tenants \
    --mix micro-skewed --mix micro-deadline --resume --out "$TENANTS_TMP" \
    > /dev/null 2> "$TENANTS_TMP/resume.log"
grep -q "resumed from the journal" "$TENANTS_TMP/resume.log"
rm -rf "$TENANTS_TMP"

# Metrics smoke: a small campaign must leave a loadable snapshot stream
# under <out>/.metrics/, `repro top --once` must render a frame from it,
# and `repro metrics --prom` must emit validated Prometheus text.
echo "==> metrics smoke test (repro fig3 + top --once + metrics --prom)"
METRICS_TMP="$(mktemp -d)"
trap 'rm -rf "$METRICS_TMP" "${SERVE_TMP:-}"' EXIT
cargo run --quiet --release -p subcore-experiments --bin repro -- fig3 --out "$METRICS_TMP" \
    > /dev/null
cargo run --quiet --release -p subcore-experiments --bin repro -- top --once --out "$METRICS_TMP" \
    > /dev/null
cargo run --quiet --release -p subcore-experiments --bin repro -- metrics --prom \
    --out "$METRICS_TMP" > "$METRICS_TMP/metrics.prom"
test -s "$METRICS_TMP/metrics.prom"

# Serve smoke: an ephemeral daemon (port 0, address discovered via the
# atomic --addr-file) must admit and settle a 2-case sweep, answer the
# /healthz and validated-Prometheus /metrics probes, and exit 0 on a
# graceful drain.
echo "==> serve smoke test (repro serve + submit --wait + jobs + drain)"
SERVE_TMP="$(mktemp -d)"
REPRO=./target/release/repro
"$REPRO" serve --out "$SERVE_TMP" --dir "$SERVE_TMP/queue" --port 0 \
    --addr-file "$SERVE_TMP/addr" 2> "$SERVE_TMP/serve.log" &
SERVE_PID=$!
"$REPRO" submit fma --design baseline --addr-file "$SERVE_TMP/addr" --wait > /dev/null
"$REPRO" submit fma --design rba --addr-file "$SERVE_TMP/addr" --wait > /dev/null
"$REPRO" jobs --addr-file "$SERVE_TMP/addr" | grep -q "done"
"$REPRO" jobs --addr-file "$SERVE_TMP/addr" --healthz | grep -q '"ok":true'
"$REPRO" jobs --addr-file "$SERVE_TMP/addr" --metrics > "$SERVE_TMP/serve.prom"
test -s "$SERVE_TMP/serve.prom"
"$REPRO" jobs --addr-file "$SERVE_TMP/addr" --drain > /dev/null
wait "$SERVE_PID"
rm -rf "$SERVE_TMP"

echo "verify: OK"
