//! Fig. 3: in-silicon FMA microbenchmark — performance degradation from
//! sub-core issue imbalance.
//!
//! The paper runs the three Fig. 4 layouts on real A100 / RTX 3070 (both
//! 4 sub-cores per SM) and K20 (monolithic Kepler) silicon; we run them on
//! the simulated 4-sub-core Volta model and the fully-connected
//! (Kepler-like) model. Values are execution time normalized to that GPU's
//! *baseline* layout: the paper measures ≈ 3.9× for unbalanced on A100 and
//! ≈ 1.0× everywhere on Kepler.

use crate::report::Table;
use crate::sweep::fill_rows;
use subcore_engine::{simulate_app, GpuConfig, Policies};
use subcore_workloads::{fma_microbenchmark, FmaLayout};

/// FMAs per compute thread (scaled down from the paper's 4096 for sweep
/// speed; the effect is trip-count-independent once loops dominate).
const FMAS: u32 = 1024;
/// Thread blocks in the microbenchmark grid.
const BLOCKS: u32 = 8;

/// The three hardware generations compared (the paper runs A100, an RTX
/// part, and a Kepler K20; we run their simulated equivalents, each scaled
/// to one SM — the effect is SM-internal).
fn generations() -> Vec<(&'static str, GpuConfig)> {
    vec![
        ("A100-like (4 sub-cores)", GpuConfig::ampere_a100().with_sms(1)),
        ("RTX-like (4 sub-cores)", GpuConfig::turing_like().with_sms(1)),
        ("Kepler-like (monolithic)", GpuConfig::kepler_like().with_sms(1)),
    ]
}

/// Runs the experiment.
pub fn run() -> Table {
    let gens = generations();
    let mut table = Table::new(
        "fig03_fma_hw",
        "FMA microbenchmark: exec time normalized to the baseline layout",
        gens.iter().map(|(n, _)| (*n).to_owned()).collect(),
    );
    let layouts: Vec<FmaLayout> = FmaLayout::ALL.to_vec();
    let rows = fill_rows(
        &mut table,
        layouts.clone(),
        |l| l.label().to_owned(),
        |&layout| {
            let app = fma_microbenchmark(layout, BLOCKS, FMAS);
            gens.iter()
                .map(|(_, cfg)| {
                    simulate_app(cfg, &Policies::hardware_baseline(), &app)
                        .expect("microbenchmark runs")
                        .cycles as f64
                })
                .collect::<Vec<f64>>()
        },
    );
    // Normalize each column to its own baseline-layout time; without the
    // baseline-layout row the other layouts have nothing to normalize
    // against and render as gaps.
    let base_times = rows.first().cloned().flatten();
    if base_times.is_none() {
        table.note_gap("baseline layout missing; normalized rows are gaps".to_owned());
    }
    for (layout, times) in layouts.iter().zip(rows) {
        let values = match (&base_times, times) {
            (Some(base), Some(times)) => times.iter().zip(base).map(|(t, b)| t / b).collect(),
            _ => vec![f64::NAN; gens.len()],
        };
        table.push_row(layout.label().to_owned(), values);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_shape() {
        let t = run();
        // Partitioned generations: unbalanced ≈ 4×, balanced ≈ 1×.
        for gen in ["A100-like (4 sub-cores)", "RTX-like (4 sub-cores)"] {
            let unbal = t.get("unbalanced", gen).unwrap();
            assert!((3.0..4.5).contains(&unbal), "{gen}: paper ≈3.9×, got {unbal:.2}");
            let bal = t.get("balanced", gen).unwrap();
            assert!(bal < 1.2, "{gen}: balanced matches baseline, got {bal:.2}");
        }
        // Monolithic: all ≈ 1×.
        let k = t.get("unbalanced", "Kepler-like (monolithic)").unwrap();
        assert!(k < 1.3, "Kepler shows no imbalance penalty, got {k:.2}");
    }
}
