//! Fig. 17: coefficient of variation of total instructions issued from each
//! sub-core scheduler, uncompressed TPC-H.
//!
//! Paper headlines: round-robin averages cv ≈ 0.80 (worst: q8 at 1.01);
//! SRR reduces it to ≈ 0.11; Shuffle lands close to SRR.

use crate::report::Table;
use crate::runner::{run_design, tpch_base};
use crate::sweep::{append_summaries, fill_table};
use subcore_sched::Design;
use subcore_workloads::tpch_suite;

/// The assignment designs compared.
pub const DESIGNS: [Design; 3] = [Design::Baseline, Design::Srr, Design::Shuffle];

/// Runs the experiment: per-query issue CV under each assignment design.
pub fn run() -> Table {
    let mut table = Table::new(
        "fig17_issue_cv",
        "Uncompressed TPC-H: cv of per-scheduler issued instructions",
        DESIGNS.iter().map(Design::label).collect(),
    );
    fill_table(
        &mut table,
        tpch_suite(false),
        |app| app.name().to_owned(),
        |app| {
            DESIGNS
                .iter()
                .map(|&d| {
                    run_design(&tpch_base(), d, app).issue_cv().expect("partitioned run has CV")
                })
                .collect()
        },
    );
    append_summaries(&mut table);
    table
}
