//! SM partition allocation policies for multi-tenant spatial co-scheduling.
//!
//! Given `N` tenants and a GPU of `num_sms` SMs, a [`PartitionPolicy`]
//! decides which [`SmSet`] each tenant dispatches onto. This is a new
//! policy axis orthogonal to [`crate::Design`]: the design picks *how*
//! warps schedule inside an SM, the partition policy picks *which* SMs a
//! tenant gets.
//!
//! Two policies are modeled:
//!
//! * [`PartitionPolicy::Rigid`] — MIG-style equal split, ignoring what the
//!   tenants run. Contiguous `num_sms / N` slices (the first
//!   `num_sms % N` tenants take the remainder SMs).
//! * [`PartitionPolicy::ContentionAware`] — sizes each slice by a caller
//!   supplied *demand* weight (e.g. predicted solo cycles scaled by the
//!   static bank-pressure score), using largest-remainder apportionment
//!   with a one-SM floor. Tenants that cannot scale past one SM stop
//!   hoarding SMs the heavy tenants could use.
//!
//! Both are deterministic: same inputs, same partition. Overflow (more
//! tenants than SMs) degrades to empty sets for the surplus tenants so
//! the lint layer can diagnose instead of the allocator panicking.

use subcore_engine::SmSet;

/// How to carve a GPU's SMs into per-tenant partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionPolicy {
    /// Equal contiguous slices regardless of tenant demand (MIG-style).
    Rigid,
    /// Demand-proportional contiguous slices (largest-remainder method
    /// with a one-SM floor); falls back to [`PartitionPolicy::Rigid`]
    /// when the demands are degenerate (all zero / non-finite) or there
    /// are not enough SMs to differentiate.
    ContentionAware,
}

/// Every policy, in presentation order.
pub const PARTITION_POLICIES: [PartitionPolicy; 2] =
    [PartitionPolicy::Rigid, PartitionPolicy::ContentionAware];

impl PartitionPolicy {
    /// Human-readable label used in tables, CSV columns, and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            PartitionPolicy::Rigid => "rigid",
            PartitionPolicy::ContentionAware => "contention-aware",
        }
    }

    /// Parses a [`Self::label`] back into the policy.
    pub fn from_label(label: &str) -> Option<Self> {
        PARTITION_POLICIES.into_iter().find(|p| p.label() == label)
    }

    /// Allocates one [`SmSet`] per entry of `demands` over a
    /// `num_sms`-SM GPU. `demands[i]` is tenant *i*'s contention weight —
    /// ignored by [`PartitionPolicy::Rigid`]. Partitions are contiguous,
    /// disjoint, in tenant order, and cover every SM exactly once
    /// whenever `demands.len() <= num_sms`; with more tenants than SMs
    /// the surplus tenants get empty sets (a lint error, not a panic).
    pub fn allocate(self, num_sms: u32, demands: &[f64]) -> Vec<SmSet> {
        let n = demands.len();
        if n == 0 {
            return Vec::new();
        }
        let counts = match self {
            PartitionPolicy::Rigid => rigid_counts(num_sms, n),
            PartitionPolicy::ContentionAware => proportional_counts(num_sms, demands),
        };
        let mut sets = Vec::with_capacity(n);
        let mut start = 0u32;
        for count in counts {
            sets.push(SmSet::contiguous(start, count));
            start += count;
        }
        sets
    }
}

/// Equal split: `num_sms / n` each, first `num_sms % n` tenants one more.
fn rigid_counts(num_sms: u32, n: usize) -> Vec<u32> {
    let n32 = n as u32;
    let base = num_sms / n32;
    let rem = (num_sms % n32) as usize;
    (0..n).map(|i| base + u32::from(i < rem)).collect()
}

/// Largest-remainder apportionment of `num_sms` by demand weight, with a
/// one-SM floor per tenant. Degenerate demands fall back to the rigid
/// split so the policy never behaves worse than "no information".
fn proportional_counts(num_sms: u32, demands: &[f64]) -> Vec<u32> {
    let n = demands.len();
    let weights: Vec<f64> =
        demands.iter().map(|&d| if d.is_finite() && d > 0.0 { d } else { 0.0 }).collect();
    let total: f64 = weights.iter().sum();
    // Nothing to apportion on, or no slack beyond the one-SM floor.
    if total <= 0.0 || (num_sms as usize) <= n {
        return rigid_counts(num_sms, n);
    }
    // Reserve the floor, apportion the rest by weight.
    let spare = num_sms - n as u32;
    let quotas: Vec<f64> = weights.iter().map(|w| w / total * f64::from(spare)).collect();
    let mut counts: Vec<u32> = quotas.iter().map(|q| 1 + q.floor() as u32).collect();
    let assigned: u32 = counts.iter().sum();
    let mut leftover = num_sms - assigned;
    // Hand leftover SMs to the largest fractional remainders; ties break
    // deterministically toward the lower tenant index.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let fa = quotas[a] - quotas[a].floor();
        let fb = quotas[b] - quotas[b].floor();
        fb.partial_cmp(&fa).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    for &i in &order {
        if leftover == 0 {
            break;
        }
        counts[i] += 1;
        leftover -= 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(sets: &[SmSet]) -> Vec<u32> {
        sets.iter().flat_map(|s| s.ids().iter().copied()).collect()
    }

    #[test]
    fn rigid_splits_evenly_and_covers_every_sm() {
        let sets = PartitionPolicy::Rigid.allocate(8, &[1.0, 1.0]);
        assert_eq!(sets[0].ids(), &[0, 1, 2, 3]);
        assert_eq!(sets[1].ids(), &[4, 5, 6, 7]);
        // Remainder SMs go to the first tenants.
        let sets = PartitionPolicy::Rigid.allocate(8, &[0.0, 0.0, 0.0]);
        assert_eq!(sets.iter().map(SmSet::len).collect::<Vec<_>>(), vec![3, 3, 2]);
        assert_eq!(flat(&sets), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn contention_aware_skews_toward_heavy_tenants() {
        // Heavy tenant demands 3x the light one: on 4 SMs it gets 3.
        let sets = PartitionPolicy::ContentionAware.allocate(4, &[3.0, 1.0]);
        assert_eq!(sets[0].len(), 3);
        assert_eq!(sets[1].len(), 1);
        assert_eq!(flat(&sets), vec![0, 1, 2, 3]);
    }

    #[test]
    fn contention_aware_keeps_one_sm_floor() {
        let sets = PartitionPolicy::ContentionAware.allocate(8, &[100.0, 1.0, 1.0]);
        assert!(sets.iter().all(|s| !s.is_empty()));
        assert_eq!(sets.iter().map(SmSet::len).sum::<usize>(), 8);
        assert!(sets[0].len() >= 5, "heavy tenant got {:?}", sets[0]);
    }

    #[test]
    fn degenerate_demands_fall_back_to_rigid() {
        for demands in [[0.0, 0.0], [f64::NAN, f64::INFINITY], [-1.0, 0.0]] {
            let sets = PartitionPolicy::ContentionAware.allocate(6, &demands);
            assert_eq!(sets, PartitionPolicy::Rigid.allocate(6, &demands));
        }
    }

    #[test]
    fn overflow_tenants_get_empty_sets_without_panicking() {
        for policy in PARTITION_POLICIES {
            let sets = policy.allocate(2, &[1.0, 1.0, 1.0]);
            assert_eq!(sets.len(), 3);
            assert_eq!(sets.iter().filter(|s| s.is_empty()).count(), 1);
            assert_eq!(flat(&sets), vec![0, 1]);
        }
    }

    #[test]
    fn labels_round_trip() {
        for policy in PARTITION_POLICIES {
            assert_eq!(PartitionPolicy::from_label(policy.label()), Some(policy));
        }
        assert_eq!(PartitionPolicy::from_label("nope"), None);
    }
}
