//! Differential tests of the event-driven engine core against the polled
//! reference: for any workload, design, connectivity, and engine option
//! set, `EngineMode::EventDriven` (ready-set scheduling + idle-cycle
//! skip-ahead) must produce **bit-identical** `RunStats` — cycles, stall
//! breakdowns, per-scheduler issue counts, and the windowed probe series.

use proptest::prelude::*;
use subcore_engine::{simulate_app, EngineMode, GpuConfig, Policies, RunStats};
use subcore_integration::test_gpu;
use subcore_isa::{App, Suite};
use subcore_sched::Design;
use subcore_workloads::{
    fma_microbenchmark, AppParams, FmaLayout, Imbalance, KernelParams, MemShape, Mix,
};

/// Runs `app` under both engine modes of the same configuration and
/// returns the two results (which callers assert identical).
fn both_modes(
    cfg: &GpuConfig,
    policies: &Policies,
    app: &App,
) -> (Result<RunStats, subcore_engine::SimError>, Result<RunStats, subcore_engine::SimError>) {
    let fast = simulate_app(&cfg.clone().with_engine_mode(EngineMode::EventDriven), policies, app);
    let reference =
        simulate_app(&cfg.clone().with_engine_mode(EngineMode::Reference), policies, app);
    (fast, reference)
}

fn assert_bit_exact(cfg: &GpuConfig, policies: &Policies, app: &App, label: &str) {
    let (fast, reference) = both_modes(cfg, policies, app);
    assert_eq!(fast, reference, "{label}: event-driven engine diverged from polled reference");
}

/// Strategy: a small but diverse random kernel (mirrors the invariants
/// suite, plus idle-heavy imbalance shapes that maximize skip spans).
fn arb_kernel() -> impl Strategy<Value = KernelParams> {
    (
        1u32..6,  // blocks
        1u32..17, // warps per block
        4u8..20,  // reg span
        1u32..5,  // body_len / 4
        1u32..17, // iters
        0u8..3,   // mix selector
        prop_oneof![
            Just(Imbalance::None),
            (2u32..5, 2u32..9).prop_map(|(p, f)| Imbalance::EveryNth { period: p, factor: f }),
            (2u32..9).prop_map(|m| Imbalance::Ramp { max_factor: m }),
        ],
        any::<bool>(), // structured banks
        any::<u64>(),  // seed
    )
        .prop_map(
            |(blocks, warps, span, body4, iters, mix_sel, imbalance, structured, seed)| {
                let mut p = KernelParams::base("prop");
                p.blocks = blocks;
                p.warps_per_block = warps;
                p.regs_per_thread = 32;
                p.reg_span = span;
                p.body_len = body4 * 4;
                p.iters = iters;
                p.mix = match mix_sel {
                    0 => Mix::compute(),
                    1 => Mix::register_bound(),
                    _ => Mix::streaming(),
                };
                p.mem = MemShape { irregular_span: 512, ..MemShape::default() };
                p.imbalance = imbalance;
                p.structured_banks = structured;
                p.seed = seed;
                p
            },
        )
}

fn arb_design() -> impl Strategy<Value = Design> {
    prop_oneof![
        Just(Design::Baseline),
        Just(Design::Rba),
        Just(Design::Srr),
        Just(Design::Shuffle),
        Just(Design::ShuffleRba),
        Just(Design::FullyConnected),
        Just(Design::CuScaling(4)),
        Just(Design::BankStealing),
        Just(Design::RbaLatency(7)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random kernels × designs: the full `RunStats` (every counter, both
    /// connectivities via the design set) must match bit-for-bit.
    #[test]
    fn event_driven_matches_reference(kernel in arb_kernel(), design in arb_design()) {
        let app = AppParams::single("prop", Suite::Micro, kernel).build();
        let cfg = design.config(&test_gpu());
        let (fast, reference) = both_modes(&cfg, &design.policies(), &app);
        prop_assert_eq!(fast, reference);
    }

    /// Windowed tracing (the internal aggregator sink) stays exact across
    /// skip-ahead: synthesized cycles land in the same windows with the
    /// same stall/depth samples.
    #[test]
    fn windowed_series_match_across_modes(kernel in arb_kernel(), design in arb_design()) {
        let app = AppParams::single("prop", Suite::Micro, kernel).build();
        let mut cfg = design.config(&test_gpu());
        cfg.stats.trace_window = 256;
        cfg.stats.trace_sm = 0;
        let (fast, reference) = both_modes(&cfg, &design.policies(), &app);
        let fast = fast.expect("simulates");
        let reference = reference.expect("simulates");
        prop_assert!(fast.windowed.is_some(), "trace_window > 0 attaches a series");
        prop_assert_eq!(fast, reference);
    }

    /// The cycle limit fires at the identical cycle in both modes: a skip
    /// can never jump past the limit that the polled loop would hit.
    #[test]
    fn cycle_limit_parity(kernel in arb_kernel(), limit in 1u64..2000) {
        let app = AppParams::single("prop", Suite::Micro, kernel).build();
        let mut cfg = test_gpu();
        cfg.max_cycles = limit;
        let (fast, reference) = both_modes(&cfg, &Policies::hardware_baseline(), &app);
        prop_assert_eq!(fast, reference);
    }
}

/// The optional engine features each touch the hot loop (work stealing,
/// warp-level dealloc, dual issue, write-port contention, RF tracing);
/// every combination must stay exact on an idle-heavy unbalanced kernel,
/// where skip spans are longest.
#[test]
fn engine_options_stay_exact_on_unbalanced_fma() {
    let app = fma_microbenchmark(FmaLayout::Unbalanced, 4, 1024);
    type OptionToggle = fn(&mut GpuConfig);
    let options: [(&str, OptionToggle); 6] = [
        ("work_stealing", |c| c.work_stealing = true),
        ("warp_level_dealloc", |c| c.warp_level_dealloc = true),
        ("dual_issue", |c| c.issue_width = 2),
        ("write_port_contention", |c| c.rf_write_port_contention = true),
        ("mshr_merging", |c| c.mshr_merging = true),
        ("rf_trace", |c| c.stats.record_rf_trace = true),
    ];
    for (label, mutate) in options {
        let mut cfg = test_gpu();
        mutate(&mut cfg);
        assert_bit_exact(&cfg, &Policies::hardware_baseline(), &app, label);
    }
}

/// Registry workloads under the headline designs: the figures must be
/// reproducible from either engine.
#[test]
fn registry_apps_match_across_modes() {
    for name in ["pb-sgemm", "rod-bp", "pb-spmv", "tpcU-q8", "tpcC-q9"] {
        let app = subcore_workloads::app_by_name(name).expect("registry app");
        for design in [Design::Baseline, Design::Rba, Design::FullyConnected, Design::BankStealing]
        {
            let cfg = design.config(&test_gpu());
            assert_bit_exact(&cfg, &design.policies(), &app, &format!("{name}/{}", design.label()));
        }
    }
}

/// The full acceptance sweep: every registry app (all 112, including both
/// TPC-H suites) under every headline design, both modes, whole-`RunStats`
/// equality. Too slow for the default suite — run it explicitly:
///
/// ```text
/// cargo test --release -p subcore-integration --test engine_modes -- --ignored
/// ```
#[test]
#[ignore = "exhaustive 112-app x 6-design sweep; run with --release and -- --ignored"]
fn exhaustive_registry_bit_exactness() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let apps = subcore_workloads::all_apps();
    let designs = [
        Design::Baseline,
        Design::Rba,
        Design::Srr,
        Design::Shuffle,
        Design::ShuffleRba,
        Design::FullyConnected,
    ];
    let next = AtomicUsize::new(0);
    let workers = std::thread::available_parallelism().map_or(4, |w| w.get());
    std::thread::scope(|s| {
        for _ in 0..workers.min(apps.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(app) = apps.get(i) else { break };
                for design in designs {
                    let cfg = design.config(&test_gpu());
                    let label = format!("{}/{}", app.name(), design.label());
                    assert_bit_exact(&cfg, &design.policies(), app, &label);
                }
            });
        }
    });
}

/// Multi-kernel apps cross kernel boundaries (and the inter-kernel drain,
/// a guaranteed quiescent span) without divergence.
#[test]
fn multi_kernel_apps_match_across_modes() {
    let mut a = KernelParams::base("a");
    a.blocks = 3;
    a.imbalance = Imbalance::Ramp { max_factor: 6 };
    let mut b = KernelParams::base("b");
    b.blocks = 2;
    b.mix = Mix::streaming();
    let app = AppParams { name: "multi".into(), suite: Suite::Micro, kernels: vec![a, b] }.build();
    assert_bit_exact(&test_gpu(), &Policies::hardware_baseline(), &app, "multi-kernel");
}
