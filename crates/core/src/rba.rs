//! The Register-Bank-Aware (RBA) warp scheduler (§IV-A of the paper).

use subcore_engine::{IssueView, WarpSelector};

/// Register-Bank-Aware warp scheduling.
///
/// For each ready warp instruction the scheduler computes an *RBA score*:
/// the sum, over the instruction's register source operands, of the pending
/// request-queue length of the bank each operand lives in (an instruction
/// with two operands in bank 0 and one in bank 1 scores
/// `2·len(q₀) + len(q₁)`). The warp selection logic compares the
/// concatenated field `{RBA score, complement(age)}`, so the lowest score
/// wins and older warps win ties — exactly the hardware comparator network
/// of the paper's Fig. 6.
///
/// Greedy behaviour is preserved: like GTO, the previously issued warp is
/// re-issued as long as it remains ready *and* still has the (equal-)lowest
/// score; this keeps the baseline's locality benefits when banks are quiet.
///
/// The queue lengths the engine exposes in [`IssueView`] are already delayed
/// by the configured score-update latency, so this selector transparently
/// models the §VI-B4 staleness sweep.
#[derive(Debug, Default)]
pub struct RbaSelector {
    last: Option<u32>,
}

impl RbaSelector {
    /// Creates an RBA selector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WarpSelector for RbaSelector {
    fn select(&mut self, view: &IssueView<'_>) -> Option<usize> {
        let mut best: Option<(u32, u64, usize)> = None;
        for i in 0..view.candidates.len() {
            let score = view.rba_score(i);
            let age = view.candidates[i].age;
            // Greedy tie-break: at equal score, the last-issued warp counts
            // as the oldest.
            let eff_age = if Some(view.candidates[i].warp_slot) == view.last_issued
                && Some(view.candidates[i].warp_slot) == self.last
            {
                0
            } else {
                age + 1
            };
            if best.is_none_or(|(s, a, _)| (score, eff_age) < (s, a)) {
                best = Some((score, eff_age, i));
            }
        }
        let (_, _, i) = best?;
        self.last = Some(view.candidates[i].warp_slot);
        Some(i)
    }

    fn name(&self) -> &'static str {
        "rba"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subcore_engine::IssueCandidate;
    use subcore_isa::Pipeline;

    fn cand(slot: u32, age: u64, banks: [u8; 3], num_srcs: u8) -> IssueCandidate {
        IssueCandidate { warp_slot: slot, age, num_srcs, banks, pipeline: Pipeline::Fma }
    }

    #[test]
    fn lowest_score_wins() {
        let mut rba = RbaSelector::new();
        // Bank 0 has a deep queue; bank 1 is idle.
        let lens = [6u16, 0];
        let c = vec![
            cand(0, 0, [0, 0, 0], 3), // score 18, oldest
            cand(1, 5, [1, 1, 1], 3), // score 0
        ];
        let view = IssueView { candidates: &c, bank_queue_lens: &lens, last_issued: None };
        assert_eq!(rba.select(&view), Some(1), "idle-bank warp beats older busy-bank warp");
    }

    #[test]
    fn age_breaks_ties() {
        let mut rba = RbaSelector::new();
        let lens = [2u16, 2];
        let c = vec![cand(0, 9, [0, 1, 0], 2), cand(1, 3, [1, 0, 0], 2)];
        let view = IssueView { candidates: &c, bank_queue_lens: &lens, last_issued: None };
        assert_eq!(rba.select(&view), Some(1), "equal scores fall back to oldest");
    }

    #[test]
    fn greedy_preserved_at_equal_score() {
        let mut rba = RbaSelector::new();
        let lens = [0u16, 0];
        let c = vec![cand(0, 1, [0, 0, 0], 2), cand(1, 5, [1, 1, 0], 2)];
        // Establish greedy state on the *younger* warp.
        let view = IssueView { candidates: &c, bank_queue_lens: &lens, last_issued: Some(1) };
        // Without greedy state in the selector itself, age wins first.
        assert_eq!(rba.select(&view), Some(0));
        // Now slot 0 is the greedy warp: with all-idle banks it keeps issuing.
        let view = IssueView { candidates: &c, bank_queue_lens: &lens, last_issued: Some(0) };
        assert_eq!(rba.select(&view), Some(0));
    }

    #[test]
    fn duplicate_bank_operands_penalized() {
        let mut rba = RbaSelector::new();
        let lens = [3u16, 1];
        // Same total operand count; one spreads across banks, one doubles up
        // on the busy bank.
        let c = vec![
            cand(0, 0, [0, 0, 1], 3), // 3+3+1 = 7
            cand(1, 9, [0, 1, 1], 3), // 3+1+1 = 5
        ];
        let view = IssueView { candidates: &c, bank_queue_lens: &lens, last_issued: None };
        assert_eq!(rba.select(&view), Some(1));
    }

    #[test]
    fn zero_source_instructions_score_zero() {
        let mut rba = RbaSelector::new();
        let lens = [9u16, 9];
        let c = vec![cand(0, 0, [0, 0, 0], 3), cand(1, 9, [0, 0, 0], 0)];
        let view = IssueView { candidates: &c, bank_queue_lens: &lens, last_issued: None };
        assert_eq!(rba.select(&view), Some(1), "no-operand instructions never conflict");
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(RbaSelector::new().name(), "rba");
    }
}
