//! Top-down analysis: where do scheduler slots go, per workload class?
//!
//! Not a paper figure, but the analysis that *explains* the figures: each
//! app's scheduler-cycles are attributed to issue vs. the engine's stall
//! taxonomy, alongside occupancy and register-file utilization, under the
//! baseline and under the combined Shuffle+RBA design. Reading this table
//! tells you which paper mechanism an app can respond to before running
//! the design sweeps.

use crate::report::Table;
use crate::runner::{run_design, suite_base, tpch_base};
use crate::sweep::fill_table;
use subcore_engine::RunStats;
use subcore_isa::App;
use subcore_sched::Design;
use subcore_workloads::{app_by_name, tpch_query};

/// Fraction columns produced per run.
fn breakdown(stats: &RunStats) -> Vec<f64> {
    // Total scheduler slots = schedulers × cycles (per SM count embedded in
    // issued_per_scheduler layout).
    let schedulers: u64 = stats.issued_per_scheduler.iter().map(|sm| sm.len() as u64).sum();
    let slots = (schedulers * stats.cycles).max(1) as f64;
    let s = &stats.stalls;
    vec![
        stats.instructions as f64 / slots,
        s.no_collector_unit as f64 / slots,
        s.scoreboard as f64 / slots,
        s.barrier as f64 / slots,
        s.idle as f64 / slots,
        stats.avg_occupancy(),
        32.0 * stats.rf_reads_per_cycle_per_sm(),
    ]
}

/// Representative apps, one per behaviour class.
fn representatives() -> Vec<App> {
    let mut apps: Vec<App> = [
        "rod-srad",     // read-operand bound
        "cg-pgrnk",     // register reuse + gathers
        "pb-sad",       // streaming
        "pb-spmv",      // irregular
        "cutlass-4096", // tensor tiled
        "ply-gemm",     // dense compute
    ]
    .iter()
    .map(|n| app_by_name(n).expect("registry app"))
    .collect();
    apps.push(tpch_query(8, false)); // warp-specialized
    apps
}

/// Runs the analysis under one design.
fn table_for(design: Design, name: &str, title: &str) -> Table {
    let mut table = Table::new(
        name,
        title,
        vec![
            "issue".into(),
            "no-cu".into(),
            "scoreboard".into(),
            "barrier".into(),
            "idle".into(),
            "occupancy".into(),
            "rf-reads".into(),
        ],
    );
    fill_table(
        &mut table,
        representatives(),
        |app| app.name().to_owned(),
        |app| {
            let cfg = if app.name().starts_with("tpc") { tpch_base() } else { suite_base() };
            breakdown(&run_design(&cfg, design, app))
        },
    );
    table
}

/// Runs the top-down analysis: baseline and the combined design.
pub fn run() -> Vec<Table> {
    vec![
        table_for(
            Design::Baseline,
            "topdown_baseline",
            "Scheduler-slot breakdown under GTO+RR (fractions; occupancy in warps; rf-reads of 256)",
        ),
        table_for(
            Design::ShuffleRba,
            "topdown_shuffle_rba",
            "Scheduler-slot breakdown under Shuffle+RBA",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_are_sane() {
        let tables = run();
        assert_eq!(tables.len(), 2);
        for t in &tables {
            for (label, values) in &t.rows {
                let issue = values[0];
                assert!(issue > 0.0 && issue <= 1.0, "{label}: issue fraction {issue}");
                // Attributed stalls never exceed the non-issuing slots.
                let stalls: f64 = values[1..5].iter().sum();
                assert!(
                    stalls <= 1.0 - issue + 1e-9,
                    "{label}: stalls {stalls:.3} vs issue {issue:.3}"
                );
                let occ = values[5];
                assert!(occ > 0.0 && occ <= 64.0, "{label}: occupancy {occ}");
            }
        }
        // The combined design issues more per slot on the read-bound app.
        let base = tables[0].get("rod-srad", "issue").unwrap();
        let ours = tables[1].get("rod-srad", "issue").unwrap();
        assert!(ours > base, "Shuffle+RBA lifts issue fraction: {base:.3} → {ours:.3}");
    }
}
