//! A set-associative, LRU cache model operating on line addresses.

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was resident.
    Hit,
    /// The line was not resident (and was allocated if the access allocates).
    Miss,
}

/// A set-associative cache with true-LRU replacement, tracking only tags.
///
/// Addresses are *line* addresses (byte address / line size); the caller
/// performs that division once in the coalescer. Stores can be configured
/// per-access to allocate (write-allocate, used at L2) or bypass on miss
/// (write-through no-allocate, used at L1, matching Volta).
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    assoc: usize,
    /// `tags[set * assoc + way]`; `u64::MAX` marks an invalid way.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags` (larger = more recent).
    stamps: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

const INVALID: u64 = u64::MAX;

impl Cache {
    /// Creates a cache with `sets` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `assoc` is zero.
    pub fn new(sets: u32, assoc: u32) -> Self {
        assert!(sets > 0 && assoc > 0, "cache geometry must be nonzero");
        let n = sets as usize * assoc as usize;
        Cache {
            sets: sets as usize,
            assoc: assoc as usize,
            tags: vec![INVALID; n],
            stamps: vec![0; n],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `line`, allocating it on miss when `allocate_on_miss`.
    pub fn access(&mut self, line: u64, allocate_on_miss: bool) -> AccessOutcome {
        self.tick += 1;
        let set = (line as usize) % self.sets;
        let base = set * self.assoc;
        let ways = base..base + self.assoc;

        for i in ways.clone() {
            if self.tags[i] == line {
                self.stamps[i] = self.tick;
                self.hits += 1;
                return AccessOutcome::Hit;
            }
        }
        self.misses += 1;
        if allocate_on_miss {
            // Victim: invalid way if any, else LRU.
            let victim = ways
                .min_by_key(|&i| if self.tags[i] == INVALID { (0, 0) } else { (1, self.stamps[i]) })
                .expect("assoc > 0");
            self.tags[victim] = line;
            self.stamps[victim] = self.tick;
        }
        AccessOutcome::Miss
    }

    /// True if `line` is currently resident (no LRU update, no stat change).
    pub fn probe(&self, line: u64) -> bool {
        let set = (line as usize) % self.sets;
        let base = set * self.assoc;
        self.tags[base..base + self.assoc].contains(&line)
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_access_hits() {
        let mut c = Cache::new(16, 4);
        assert_eq!(c.access(5, true), AccessOutcome::Miss);
        assert_eq!(c.access(5, true), AccessOutcome::Hit);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn no_allocate_miss_stays_cold() {
        let mut c = Cache::new(16, 4);
        assert_eq!(c.access(5, false), AccessOutcome::Miss);
        assert_eq!(c.access(5, false), AccessOutcome::Miss);
        assert!(!c.probe(5));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(1, 2);
        c.access(0, true); // ways: [0]
        c.access(1, true); // ways: [0, 1]
        c.access(0, true); // refresh 0; 1 is now LRU
        c.access(2, true); // evicts 1
        assert!(c.probe(0));
        assert!(!c.probe(1));
        assert!(c.probe(2));
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = Cache::new(4, 1);
        c.access(0, true);
        c.access(1, true);
        c.access(2, true);
        c.access(3, true);
        assert!(c.probe(0) && c.probe(1) && c.probe(2) && c.probe(3));
        // 4 aliases with 0 in set 0 and evicts it.
        c.access(4, true);
        assert!(!c.probe(0));
        assert!(c.probe(4));
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut c = Cache::new(64, 8);
        let lines: Vec<u64> = (0..512).collect();
        for &l in &lines {
            c.access(l, true);
        }
        for &l in &lines {
            assert_eq!(c.access(l, true), AccessOutcome::Hit, "line {l} should be resident");
        }
    }
}
